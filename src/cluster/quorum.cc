/**
 * @file
 * Quorum coordination state plus the Cluster's replicated-data-tier
 * RPC choreography (quorum writes/reads, hinted handoff, read repair
 * and the scale-event rebalance stream). Everything here is reached
 * only when ReplicationParams::factor > 1.
 */

#include "cluster/quorum.hh"

#include <algorithm>
#include <set>
#include <utility>

#include "base/logging.hh"
#include "cluster/cluster.hh"
#include "db/store.hh"
#include "teastore/app.hh"

namespace microscale::cluster
{

namespace
{

/** Instruction budgets of the replication-only shard handlers. */
constexpr double kApplyWriteCost = 120e3;
constexpr double kProbeCost = 30e3;
constexpr double kMigrateBatchCost = 200e3;
/** Size of replication control messages. */
constexpr std::uint32_t kQuorumCtrlBytes = 256;
/** Response size of version probes and applies. */
constexpr std::uint32_t kQuorumRespBytes = 64;
/** Deadlines of background replication traffic (async legs, hint
 * replay, migrate batches): generous, but bounded so a partitioned
 * peer resolves to a failure instead of hanging the drain. */
constexpr Tick kAsyncApplyDeadline = 1 * kSecond;
constexpr Tick kRebalanceDeadline = 5 * kSecond;

/** Client names for background traffic (edge-policy/link matching). */
constexpr const char *kQuorumClient = "quorum";
constexpr const char *kRebalanceClient = "rebalance";

/** Entity-op index of an "<op>:<id>" entity key. */
std::uint64_t
entityOpIndexOf(const std::string &entity)
{
    const auto colon = entity.find(':');
    return detail::entityOpIndex(entity.substr(0, colon));
}

} // namespace

unsigned
resolvedWriteQuorum(const ReplicationParams &p)
{
    if (p.writeQuorum != 0)
        return p.writeQuorum;
    return p.factor / 2 + 1;
}

unsigned
resolvedReadQuorum(const ReplicationParams &p)
{
    if (p.readQuorum != 0)
        return p.readQuorum;
    const unsigned w = resolvedWriteQuorum(p);
    return p.factor >= w ? p.factor - w + 1 : 1;
}

// ---------------------------------------------------------------------------
// QuorumCoordinator

QuorumCoordinator::QuorumCoordinator(const ReplicationParams &params,
                                     unsigned shards,
                                     chaos::RequestLedger *ledger)
    : params_(params), write_quorum_(resolvedWriteQuorum(params)),
      read_quorum_(resolvedReadQuorum(params)), ledger_(ledger)
{
    if (write_quorum_ == 0 || write_quorum_ > params_.factor)
        fatal("write quorum ", write_quorum_,
              " out of range for factor ", params_.factor);
    if (read_quorum_ == 0 || read_quorum_ > params_.factor)
        fatal("read quorum ", read_quorum_, " out of range for factor ",
              params_.factor);
    applied_.resize(shards);
    hint_queues_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i)
        hint_queues_.emplace_back(params_.hintQueueCap);
}

void
QuorumCoordinator::addShard()
{
    applied_.emplace_back();
    hint_queues_.emplace_back(params_.hintQueueCap);
}

std::uint64_t
QuorumCoordinator::beginWrite(const std::string &entity)
{
    return ++next_version_[entity];
}

void
QuorumCoordinator::recordApplied(unsigned shard,
                                 const std::string &entity,
                                 std::uint64_t version)
{
    auto &v = applied_.at(shard)[entity];
    if (version > v)
        v = version;
}

std::uint64_t
QuorumCoordinator::appliedVersion(unsigned shard,
                                  const std::string &entity) const
{
    const auto &m = applied_.at(shard);
    const auto it = m.find(entity);
    return it == m.end() ? 0 : it->second;
}

void
QuorumCoordinator::ackWrite(const std::string &entity,
                            std::uint64_t version)
{
    auto &v = acked_[entity];
    if (version > v)
        v = version;
    ++stats_.ackedWrites;
    if (ledger_ != nullptr)
        ledger_->recordAckedWrite(entity, version);
}

std::uint64_t
QuorumCoordinator::ackedVersion(const std::string &entity) const
{
    const auto it = acked_.find(entity);
    return it == acked_.end() ? 0 : it->second;
}

void
QuorumCoordinator::recordStaleRead()
{
    ++stats_.staleQuorumReads;
    if (ledger_ != nullptr)
        ledger_->recordStaleQuorumRead();
}

void
QuorumCoordinator::noteHintDepth()
{
    std::uint64_t depth = 0;
    for (const HintQueue &q : hint_queues_)
        depth += q.depth();
    stats_.hintDepthPeak = std::max(stats_.hintDepthPeak, depth);
}

void
QuorumCoordinator::verifyAcked(
    const std::function<std::vector<unsigned>(const std::string &)>
        &ownersOf)
{
    stats_.consistencyChecked = true;
    // A read picks any R_q of the owners, so an acked write survives
    // only while at least R - R_q + 1 owners hold it.
    const unsigned need = params_.factor - read_quorum_ + 1;
    for (const auto &[entity, version] : acked_) {
        unsigned have = 0;
        for (unsigned s : ownersOf(entity)) {
            if (appliedVersion(s, entity) >= version)
                ++have;
        }
        if (have < need) {
            ++stats_.lostAckedWrites;
            if (ledger_ != nullptr)
                ledger_->recordLostAckedWrite(entity, version);
        }
    }
}

std::vector<std::string>
QuorumCoordinator::knownEntities() const
{
    std::set<std::string> keys;
    for (const auto &m : applied_) {
        for (const auto &[entity, version] : m)
            keys.insert(entity);
    }
    for (const auto &[entity, version] : acked_)
        keys.insert(entity);
    return {keys.begin(), keys.end()};
}

void
QuorumCoordinator::harvest(core::ReplicationSummary &out) const
{
    out.active = true;
    out.factor = params_.factor;
    out.writeQuorum = write_quorum_;
    out.readQuorum = read_quorum_;
    out.quorumWrites = stats_.quorumWrites;
    out.writeFailures = stats_.writeFailures;
    out.writeAckP50Ms =
        write_ack_ns_.count() > 0 ? write_ack_ns_.p50() / 1e6 : 0.0;
    out.writeAckP99Ms = write_ack_ns_.count() > 0
                            ? write_ack_ns_.quantile(0.99) / 1e6
                            : 0.0;
    out.quorumReads = stats_.quorumReads;
    out.readFailures = stats_.readFailures;
    out.readRepairs = stats_.readRepairs;
    out.readRefetches = stats_.readRefetches;
    out.readP50Ms = read_ns_.count() > 0 ? read_ns_.p50() / 1e6 : 0.0;
    out.readP99Ms =
        read_ns_.count() > 0 ? read_ns_.quantile(0.99) / 1e6 : 0.0;
    out.hintsQueued = stats_.hintsQueued;
    out.hintsReplayed = stats_.hintsReplayed;
    out.hintsDropped = stats_.hintsDropped;
    out.hintDepthPeak = stats_.hintDepthPeak;
    out.rebalancesStarted = stats_.rebalancesStarted;
    out.rebalancesCompleted = stats_.rebalancesCompleted;
    out.rebalanceBatches = stats_.rebalanceBatches;
    out.rebalanceBytes = stats_.rebalanceBytes;
    out.dualReads = stats_.dualReads;
    out.rebalanceMsTotal = stats_.rebalanceMsTotal;
    out.consistencyChecked = stats_.consistencyChecked;
    out.ackedWrites = stats_.ackedWrites;
    out.lostAckedWrites = stats_.lostAckedWrites;
    out.staleQuorumReads = stats_.staleQuorumReads;
}

// ---------------------------------------------------------------------------
// Cluster: replication ops on shard services

void
Cluster::installQuorumOps(svc::Service *s, unsigned idx)
{
    // applyWrite: a replica leg of a quorum write (or a read repair /
    // hint replay). arg0 = entity id, arg1 = version, arg2 = entity-op
    // index. The handler records the applied version — the store data
    // itself is global state in this model, so only the version map
    // needs maintaining.
    s->addOp("applyWrite", [this, idx](svc::HandlerCtx &ctx) {
        const svc::Payload &req = ctx.request();
        const std::string entity = detail::entityOf(
            detail::entityOpName(static_cast<unsigned>(req.arg2)),
            req.arg0);
        coordinator_->recordApplied(idx, entity, req.arg1);
        ctx.response().bytes = kQuorumRespBytes;
        ctx.compute(app_.scaled(kApplyWriteCost),
                    [&ctx] { ctx.done(); });
    });

    // versionProbe: the cheap digest leg of a quorum read.
    s->addOp("versionProbe", [this, idx](svc::HandlerCtx &ctx) {
        const svc::Payload &req = ctx.request();
        const std::string entity = detail::entityOf(
            detail::entityOpName(static_cast<unsigned>(req.arg2)),
            req.arg0);
        ctx.response().bytes = kQuorumRespBytes;
        ctx.response().arg1 = coordinator_->appliedVersion(idx, entity);
        ctx.compute(app_.scaled(kProbeCost), [&ctx] { ctx.done(); });
    });

    // migrate: one bounded batch of a rebalance stream landing on the
    // receiving shard. The bytes already paid the fabric via sendVia;
    // this is the unpack/index work.
    s->addOp("migrate", [this](svc::HandlerCtx &ctx) {
        ctx.response().bytes = kQuorumRespBytes;
        ctx.compute(app_.scaled(kMigrateBatchCost),
                    [&ctx] { ctx.done(); });
    });
}

std::vector<unsigned>
Cluster::shardOwners(const std::string &entity) const
{
    return shard_ring_.ownersFor(entity,
                                 coordinator_ ? coordinator_->factor()
                                              : 1);
}

bool
Cluster::shardUp(unsigned shard) const
{
    return !shards_.at(shard)->replicaDown(0);
}

// ---------------------------------------------------------------------------
// Cluster: quorum write

void
Cluster::quorumWrite(svc::HandlerCtx &ctx, const std::string &op,
                     const std::string &entity, svc::Payload request,
                     std::function<void(const svc::Payload &)> next)
{
    QuorumCoordinator &qc = *coordinator_;
    ++qc.stats().quorumWrites;
    const std::vector<unsigned> owners = shardOwners(entity);
    const unsigned w = qc.writeQuorum();
    const std::uint64_t version = qc.beginWrite(entity);
    const Tick t0 = ctx.now();

    // Sync set: the first W owners, up ones first — a down owner in
    // the sync set would fail a write a healthy peer could ack. When
    // fewer than W owners are up the write still goes out and the
    // down legs fail fast (W=R with a partitioned replica is the
    // "blocks then times out with Unavailable" case).
    std::vector<unsigned> order;
    for (unsigned s : owners) {
        if (shardUp(s))
            order.push_back(s);
    }
    for (unsigned s : owners) {
        if (!shardUp(s))
            order.push_back(s);
    }
    const std::size_t sync_n =
        std::min<std::size_t>(w, order.size());
    const std::vector<unsigned> sync(order.begin(),
                                     order.begin() + sync_n);
    const std::vector<unsigned> async(order.begin() + sync_n,
                                      order.end());

    // The first up sync member executes the real operation; every
    // other replica applies the version. Acks only count real
    // completions — a hint is never an ack.
    std::size_t primary_leg = 0;
    for (std::size_t i = 0; i < sync.size(); ++i) {
        if (shardUp(sync[i])) {
            primary_leg = i;
            break;
        }
    }
    svc::Payload apply;
    apply.bytes = kQuorumCtrlBytes;
    apply.arg0 = request.arg0;
    apply.arg1 = version;
    apply.arg2 = entityOpIndexOf(entity);

    std::vector<svc::HandlerCtx::CallSpec> legs;
    for (std::size_t i = 0; i < sync.size(); ++i) {
        ++shard_requests_[sync[i]];
        if (i == primary_leg)
            legs.push_back({shardName(sync[i]), op, request});
        else
            legs.push_back({shardName(sync[i]), "applyWrite", apply});
    }

    const unsigned src_node = ctx.clusterNode();
    ctx.callAll(
        legs,
        [this, &ctx, sync, async, apply, entity, version, t0,
         primary_leg, src_node, next = std::move(next)](
            const std::vector<svc::Payload> &resps,
            const std::vector<svc::Status> &statuses) {
            QuorumCoordinator &qc = *coordinator_;
            unsigned acks = 0;
            for (std::size_t i = 0; i < statuses.size(); ++i) {
                if (statuses[i] == svc::Status::Ok) {
                    ++acks;
                    qc.recordApplied(sync[i], entity, version);
                }
            }
            if (acks < qc.writeQuorum()) {
                ++qc.stats().writeFailures;
                ctx.fail(svc::Status::Unavailable);
                return;
            }
            qc.ackWrite(entity, version);
            qc.writeAckNs().add(static_cast<double>(ctx.now() - t0));
            // The write is durable at quorum; owners that missed it
            // get a hint (replayed on recovery) and the async owners
            // their replication legs.
            for (std::size_t i = 0; i < statuses.size(); ++i) {
                if (statuses[i] != svc::Status::Ok)
                    queueHint(sync[i], entity, apply, version);
            }
            for (unsigned s : async) {
                if (shardUp(s))
                    asyncApply(s, entity, apply, version, src_node);
                else
                    queueHint(s, entity, apply, version);
            }
            next(resps[primary_leg]);
        });
}

void
Cluster::queueHint(unsigned shard, const std::string &entity,
                   const svc::Payload &request, std::uint64_t version)
{
    QuorumCoordinator &qc = *coordinator_;
    HintQueue::Hint h;
    h.op = "applyWrite";
    h.entity = entity;
    h.request = request;
    h.version = version;
    if (qc.hints(shard).push(std::move(h))) {
        ++qc.stats().hintsQueued;
        qc.noteHintDepth();
    } else {
        ++qc.stats().hintsDropped;
    }
}

void
Cluster::asyncApply(unsigned shard, const std::string &entity,
                    const svc::Payload &request, std::uint64_t version,
                    unsigned srcNode)
{
    ++shard_requests_[shard];
    mesh_.sendRpc(
        kQuorumClient, shardName(shard), "applyWrite", request,
        sim_.now() + kAsyncApplyDeadline, svc::Criticality::Normal,
        [this, shard, entity, request, version](const svc::Payload &,
                                                svc::Status st) {
            if (st == svc::Status::Ok) {
                coordinator_->recordApplied(shard, entity, version);
                return;
            }
            // Only acked writes are owed to the replica; an unacked
            // one was already surfaced to the client as a failure.
            if (coordinator_->ackedVersion(entity) >= version)
                queueHint(shard, entity, request, version);
        },
        {}, srcNode);
}

// ---------------------------------------------------------------------------
// Cluster: quorum read

void
Cluster::quorumRead(svc::HandlerCtx &ctx, const std::string &op,
                    const std::string &entity, svc::Payload request,
                    std::function<void(const svc::Payload &)> next)
{
    QuorumCoordinator &qc = *coordinator_;
    ++qc.stats().quorumReads;
    const Tick t0 = ctx.now();
    const std::vector<unsigned> owners = shardOwners(entity);
    std::vector<unsigned> reachable;
    for (unsigned s : owners) {
        if (shardUp(s))
            reachable.push_back(s);
    }
    const unsigned rq = qc.readQuorum();
    if (reachable.size() < rq) {
        ++qc.stats().readFailures;
        ctx.fail(svc::Status::Unavailable);
        return;
    }
    const std::vector<unsigned> sel(reachable.begin(),
                                    reachable.begin() + rq);

    svc::Payload probe;
    probe.bytes = kQuorumCtrlBytes;
    probe.arg0 = request.arg0;
    probe.arg2 = entityOpIndexOf(entity);

    std::vector<svc::HandlerCtx::CallSpec> legs;
    ++shard_requests_[sel[0]];
    legs.push_back({shardName(sel[0]), op, request});
    for (std::size_t i = 1; i < sel.size(); ++i) {
        ++shard_requests_[sel[i]];
        legs.push_back({shardName(sel[i]), "versionProbe", probe});
    }

    // Dual read while a rebalance stream is in flight: probe the
    // incoming owner too, so cutover cannot surface a version the
    // read path never saw. Advisory only until handoff completes.
    if (next_ring_ && draining_shard_ == kNoShard) {
        const unsigned incoming = next_ring_->nodeFor(entity);
        if (std::find(owners.begin(), owners.end(), incoming) ==
                owners.end() &&
            shardUp(incoming)) {
            ++qc.stats().dualReads;
            ++shard_requests_[incoming];
            legs.push_back({shardName(incoming), "versionProbe", probe});
        }
    }

    const std::uint64_t acked0 = qc.ackedVersion(entity);
    const unsigned src_node = ctx.clusterNode();
    ctx.callAll(
        legs,
        [this, &ctx, sel, op, entity, request, t0, acked0, src_node,
         next = std::move(next)](
            const std::vector<svc::Payload> &resps,
            const std::vector<svc::Status> &statuses) {
            QuorumCoordinator &qc = *coordinator_;
            // The quorum legs are the first sel.size(); a trailing
            // dual-read probe is advisory and may fail freely.
            for (std::size_t i = 0; i < sel.size(); ++i) {
                if (statuses[i] != svc::Status::Ok) {
                    ++qc.stats().readFailures;
                    ctx.fail(svc::Status::Unavailable);
                    return;
                }
            }
            std::vector<std::uint64_t> versions(sel.size());
            versions[0] = qc.appliedVersion(sel[0], entity);
            for (std::size_t i = 1; i < sel.size(); ++i)
                versions[i] = resps[i].arg1;
            std::uint64_t freshest = versions[0];
            unsigned freshest_shard = sel[0];
            for (std::size_t i = 1; i < sel.size(); ++i) {
                if (versions[i] > freshest) {
                    freshest = versions[i];
                    freshest_shard = sel[i];
                }
            }
            if (freshest < acked0)
                qc.recordStaleRead();
            // Read repair: any probed owner behind the freshest
            // version gets an async applyWrite at that version.
            svc::Payload repair;
            repair.bytes = kQuorumCtrlBytes;
            repair.arg0 = request.arg0;
            repair.arg1 = freshest;
            repair.arg2 = entityOpIndexOf(entity);
            for (std::size_t i = 0; i < sel.size(); ++i) {
                if (versions[i] < freshest) {
                    ++qc.stats().readRepairs;
                    asyncApply(sel[i], entity, repair, freshest,
                               src_node);
                }
            }
            if (versions[0] < freshest) {
                // The full read hit a stale replica: refetch from the
                // freshest one before answering.
                ++qc.stats().readRefetches;
                ctx.call(shardName(freshest_shard), op, request,
                         [this, &ctx, t0,
                          next](const svc::Payload &resp,
                                svc::Status st) {
                             QuorumCoordinator &q = *coordinator_;
                             if (st != svc::Status::Ok) {
                                 ++q.stats().readFailures;
                                 ctx.fail(svc::Status::Unavailable);
                                 return;
                             }
                             q.readNs().add(static_cast<double>(
                                 ctx.now() - t0));
                             next(resp);
                         });
                return;
            }
            qc.readNs().add(static_cast<double>(ctx.now() - t0));
            next(resps[0]);
        });
}

// ---------------------------------------------------------------------------
// Cluster: hinted handoff

void
Cluster::onShardAvailability(unsigned shard, bool down)
{
    if (down) {
        // Hints start queuing lazily as writes fail against the down
        // replica; nothing to do on this edge.
        return;
    }
    replayNextHint(shard);
}

void
Cluster::onCacheAvailability(unsigned cacheIdx, bool down)
{
    if (down)
        return;
    // A cache node returning from an outage restarts cold: entries
    // cached before the crash may predate writes whose invalidations
    // could not reach it. Flushing everything restores coherence at
    // the price of refill misses.
    CacheNodeState &cs = cache_state_[cacheIdx];
    cs.entries.clear();
    cs.lru.clear();
    cs.entityEpoch.clear();
}

void
Cluster::replayNextHint(unsigned shard)
{
    QuorumCoordinator &qc = *coordinator_;
    if (!shardUp(shard) || qc.hints(shard).empty())
        return;
    HintQueue::Hint h = qc.hints(shard).pop();
    // Chained sends preserve arrival order on the wire; versions are
    // max-merged at the replica so replay is idempotent either way.
    const unsigned src_node = static_cast<unsigned>(std::max(
        0, shards_.at(shard)->replicaClusterNode(0)));
    ++shard_requests_[shard];
    mesh_.sendRpc(
        kQuorumClient, shardName(shard), h.op, h.request,
        sim_.now() + kAsyncApplyDeadline, svc::Criticality::Normal,
        [this, shard, entity = h.entity,
         version = h.version](const svc::Payload &, svc::Status st) {
            QuorumCoordinator &qc = *coordinator_;
            if (st == svc::Status::Ok) {
                ++qc.stats().hintsReplayed;
                qc.recordApplied(shard, entity, version);
                replayNextHint(shard);
                return;
            }
            // The replica died again mid-replay; the remaining hints
            // wait for the next up edge.
        },
        {}, src_node);
}

// ---------------------------------------------------------------------------
// Cluster: scale-event rebalancing

std::uint64_t
Cluster::storeEntityCount() const
{
    const db::StoreParams &st = app_.params().store;
    const std::uint64_t products =
        static_cast<std::uint64_t>(st.categories) *
        st.productsPerCategory;
    // categories list + per-category product lists + product/img per
    // product + user/userByName/ordersOfUser per user.
    return 1 + st.categories + 2 * products +
           3 * static_cast<std::uint64_t>(st.users);
}

void
Cluster::startAddRebalance(unsigned node)
{
    QuorumCoordinator &qc = *coordinator_;
    if (next_ring_) {
        warn("rebalance already in flight; node ", node,
             " joins without a shard");
        return;
    }
    const unsigned new_shard = static_cast<unsigned>(shards_.size());
    qc.addShard();
    createShard(new_shard, node);
    next_ring_ = std::make_unique<HashRing>(shard_ring_);
    next_ring_->addNode(new_shard);
    next_ring_->setGroup(new_shard, node);
    draining_shard_ = kNoShard;
    rebalance_started_ = sim_.now();
    ++qc.stats().rebalancesStarted;
    // The joining member takes ~1/M of the keyspace.
    const std::uint64_t moved = std::max<std::uint64_t>(
        1, storeEntityCount() / next_ring_->nodeCount());
    const unsigned per_batch =
        std::max(1u, params_.replication.rebalanceBatchEntities);
    rebalance_batches_left_ = (moved + per_batch - 1) / per_batch;
    rebalance_batch_cursor_ = 0;
    migrateNextBatch();
}

void
Cluster::startDrainRebalance(unsigned shard)
{
    QuorumCoordinator &qc = *coordinator_;
    if (next_ring_) {
        warn("rebalance already in flight; drain of shard ", shard,
             " skipped");
        return;
    }
    if (shard >= shards_.size())
        fatal("drain of unknown shard ", shard);
    auto survivors = std::make_unique<HashRing>(shard_ring_);
    survivors->removeNode(shard);
    // The survivors must still span R distinct nodes.
    std::set<unsigned> groups;
    for (unsigned m : survivors->members())
        groups.insert(survivors->groupOf(m));
    if (groups.size() < qc.factor())
        fatal("draining shard ", shard, " would leave ", groups.size(),
              " distinct nodes, fewer than replication factor ",
              qc.factor());
    next_ring_ = std::move(survivors);
    draining_shard_ = shard;
    rebalance_started_ = sim_.now();
    ++qc.stats().rebalancesStarted;
    // The leaving member hands off its ~1/M share.
    const std::uint64_t moved = std::max<std::uint64_t>(
        1, storeEntityCount() / shard_ring_.nodeCount());
    const unsigned per_batch =
        std::max(1u, params_.replication.rebalanceBatchEntities);
    rebalance_batches_left_ = (moved + per_batch - 1) / per_batch;
    rebalance_batch_cursor_ = 0;
    migrateNextBatch();
}

void
Cluster::migrateNextBatch()
{
    QuorumCoordinator &qc = *coordinator_;
    if (!next_ring_) // aborted under us
        return;
    if (rebalance_batches_left_ == 0) {
        finishRebalance();
        return;
    }
    // Add: every old member streams its share to the new shard.
    // Drain: the leaving shard streams to the survivors round-robin.
    unsigned src;
    unsigned dst;
    if (draining_shard_ != kNoShard) {
        src = draining_shard_;
        const auto &members = next_ring_->members();
        dst = members[rebalance_batch_cursor_ % members.size()];
    } else {
        dst = static_cast<unsigned>(shards_.size()) - 1;
        src = static_cast<unsigned>(rebalance_batch_cursor_ %
                                    (shards_.size() - 1));
    }
    svc::Payload batch;
    batch.bytes = params_.replication.rebalanceBatchBytes;
    batch.arg0 = rebalance_batch_cursor_;
    ++qc.stats().rebalanceBatches;
    qc.stats().rebalanceBytes += batch.bytes;
    ++shard_requests_[dst];
    const unsigned src_node = static_cast<unsigned>(
        std::max(0, shards_.at(src)->replicaClusterNode(0)));
    mesh_.sendRpc(
        kRebalanceClient, shardName(dst), "migrate", batch,
        sim_.now() + kRebalanceDeadline, svc::Criticality::Normal,
        [this](const svc::Payload &, svc::Status st) {
            if (st != svc::Status::Ok) {
                abortRebalance();
                return;
            }
            --rebalance_batches_left_;
            ++rebalance_batch_cursor_;
            migrateNextBatch();
        },
        {}, src_node);
}

void
Cluster::abortRebalance()
{
    if (!next_ring_)
        return;
    // A failed batch aborts the stream: the old ring stays
    // authoritative (no retry storm, no half-moved ranges) and the
    // summary shows started > completed.
    next_ring_.reset();
    draining_shard_ = kNoShard;
    rebalance_batches_left_ = 0;
}

void
Cluster::finishRebalance()
{
    QuorumCoordinator &qc = *coordinator_;
    // Cutover: owners gained by the new ring inherit the freshest
    // applied version of every entity they now own (the batches just
    // modeled the bytes; versions are the consistency-bearing state).
    const unsigned factor = qc.factor();
    for (const std::string &entity : qc.knownEntities()) {
        const std::vector<unsigned> old_owners =
            shard_ring_.ownersFor(entity, factor);
        const std::vector<unsigned> new_owners =
            next_ring_->ownersFor(entity, factor);
        std::uint64_t best = 0;
        for (unsigned s : old_owners)
            best = std::max(best, qc.appliedVersion(s, entity));
        for (unsigned s : new_owners) {
            if (std::find(old_owners.begin(), old_owners.end(), s) ==
                old_owners.end())
                qc.recordApplied(s, entity, best);
        }
    }
    shard_ring_ = *next_ring_;
    next_ring_.reset();
    if (draining_shard_ != kNoShard) {
        // Off the ring and handed off: retire the shard. drainReplica
        // refuses on a service's last replica, so retirement is the
        // down state — off-ring, nothing routes to it anyway, and the
        // availability observer ignores the down edge.
        shards_[draining_shard_]->setReplicaDown(0, true);
        draining_shard_ = kNoShard;
    }
    ++qc.stats().rebalancesCompleted;
    qc.stats().rebalanceMsTotal +=
        ticksToMillis(sim_.now() - rebalance_started_);
}

// ---------------------------------------------------------------------------
// Cluster: post-drain verification

void
Cluster::verifyReplication()
{
    if (!coordinator_)
        return;
    coordinator_->verifyAcked([this](const std::string &entity) {
        return shardOwners(entity);
    });
}

} // namespace microscale::cluster
