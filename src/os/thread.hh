/**
 * @file
 * os::Thread - a kernel-schedulable entity wrapping a cpu::ExecContext.
 *
 * Threads execute one work item at a time: run() attaches a profile and
 * an instruction budget, the scheduler places the thread on CPUs (with
 * preemption and migration), and the user callback fires on retirement.
 * A thread with no work is Blocked and consumes no CPU.
 */

#ifndef MICROSCALE_OS_THREAD_HH
#define MICROSCALE_OS_THREAD_HH

#include <functional>
#include <string>

#include "base/cpumask.hh"
#include "base/types.hh"
#include "cpu/exec.hh"

namespace microscale::os
{

class Kernel;

/**
 * A schedulable thread. Created through Kernel::createThread; lifetime
 * is owned by the Kernel.
 */
class Thread
{
  public:
    enum class State
    {
        Blocked,  ///< No work; not on any run queue.
        Runnable, ///< Waiting on a run queue.
        Running,  ///< Executing on a CPU (or mid context-switch).
    };

    Thread(Kernel &kernel, std::uint32_t tid, std::string name,
           CpuMask affinity, NodeId home_node);

    Thread(const Thread &) = delete;
    Thread &operator=(const Thread &) = delete;

    const std::string &name() const { return name_; }
    std::uint32_t tid() const { return tid_; }
    State state() const { return state_; }

    /** The CPU-side context (counters, memory home, placement). */
    cpu::ExecContext &ec() { return ec_; }
    const cpu::ExecContext &ec() const { return ec_; }

    /** Allowed CPUs. */
    const CpuMask &affinity() const { return affinity_; }

    /**
     * Change the affinity mask. Takes effect at the next scheduling
     * decision; a thread running outside the new mask is migrated at
     * the next preemption point.
     */
    void setAffinity(const CpuMask &mask);

    /**
     * Submit one work item; the thread must be Blocked. When the
     * instruction budget retires, `on_complete` runs in event context
     * (it may immediately submit more work).
     */
    void run(const cpu::WorkProfile &profile, double instructions,
             sim::EventFn on_complete);

    /** Total CPU time consumed, in ns (scheduler's vruntime basis). */
    double cpuTimeNs() const { return vruntime_; }

  private:
    friend class Kernel;

    Kernel &kernel_;
    std::uint32_t tid_;
    std::string name_;
    CpuMask affinity_;
    cpu::ExecContext ec_;

    State state_ = State::Blocked;
    sim::EventFn user_cb_;
    double vruntime_ = 0.0;       // ns of CPU consumed
    CpuId rq_cpu_ = kInvalidCpu;  // run queue residence while Runnable
    Tick last_dispatch_ = 0;      // when last placed on a CPU
};

} // namespace microscale::os

#endif // MICROSCALE_OS_THREAD_HH
