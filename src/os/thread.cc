#include "os/thread.hh"

#include "base/logging.hh"
#include "os/kernel.hh"

namespace microscale::os
{

Thread::Thread(Kernel &kernel, std::uint32_t tid, std::string name,
               CpuMask affinity, NodeId home_node)
    : kernel_(kernel),
      tid_(tid),
      name_(std::move(name)),
      affinity_(affinity),
      ec_(name_, home_node)
{
    if (affinity_.empty())
        MS_PANIC("thread ", name_, " created with empty affinity");
}

void
Thread::run(const cpu::WorkProfile &profile, double instructions,
            sim::EventFn on_complete)
{
    if (state_ != State::Blocked)
        MS_PANIC("Thread::run on non-blocked thread ", name_);
    user_cb_ = std::move(on_complete);
    kernel_.engine().setWork(ec_, profile, instructions,
                             [this] { kernel_.onWorkComplete(this); });
    kernel_.wake(this);
}

void
Thread::setAffinity(const CpuMask &mask)
{
    if (mask.empty())
        MS_PANIC("setAffinity with empty mask on ", name_);
    affinity_ = mask;
    kernel_.onAffinityChanged(this);
}

} // namespace microscale::os
