#include "os/kernel.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"

namespace microscale::os
{

Kernel::Kernel(sim::Simulation &sim, const topo::Machine &machine,
               cpu::ExecEngine &engine, SchedParams params,
               std::uint64_t seed)
    : sim_(sim),
      machine_(machine),
      engine_(engine),
      params_(params),
      rng_(seed, "os.kernel"),
      rq_(machine.numCpus()),
      on_cpu_(machine.numCpus(), nullptr),
      reserved_(machine.numCpus(), nullptr),
      last_ran_(machine.numCpus(), nullptr),
      min_vruntime_(machine.numCpus(), 0.0)
{
}

Kernel::~Kernel()
{
    stop();
}

Thread *
Kernel::createThread(std::string name, CpuMask affinity, NodeId home_node)
{
    const CpuMask allowed = affinity & machine_.allCpus();
    if (allowed.empty()) {
        fatal("thread '", name,
              "': affinity has no CPUs on this machine (",
              affinity.toString(), ")");
    }
    if (home_node != kInvalidNode && home_node >= machine_.numNodes())
        fatal("thread '", name, "': home node ", home_node, " not present");
    threads_.push_back(std::make_unique<Thread>(
        *this, next_tid_++, std::move(name), allowed, home_node));
    return threads_.back().get();
}

void
Kernel::start()
{
    if (started_)
        return;
    started_ = true;
    tick_.start(sim_, params_.timeslice, [this] { preemptTick(); });
    if (params_.loadBalance) {
        balancer_.start(sim_, params_.balancePeriod,
                        [this] { balancePass(); });
    }
}

void
Kernel::stop()
{
    tick_.stop();
    balancer_.stop();
    started_ = false;
}

bool
Kernel::cpuIdle(CpuId cpu) const
{
    return !engine_.runningOn(cpu) && !reserved_[cpu] && rq_[cpu].empty();
}

unsigned
Kernel::cpuLoad(CpuId cpu) const
{
    unsigned load = static_cast<unsigned>(rq_[cpu].size());
    if (engine_.runningOn(cpu) || reserved_[cpu])
        ++load;
    return load;
}

CpuId
Kernel::findIdleIn(const CpuMask &mask) const
{
    // First pass: a fully idle core (both hardware threads free), which
    // is what select_idle_core prefers.
    for (CpuId c : mask) {
        if (!cpuIdle(c))
            continue;
        const CpuId sib = machine_.siblingOf(c);
        if (sib == kInvalidCpu || cpuIdle(sib))
            return c;
    }
    // Second pass: any idle hardware thread.
    for (CpuId c : mask) {
        if (cpuIdle(c))
            return c;
    }
    return kInvalidCpu;
}

namespace
{

/** Least-loaded CPU in `mask`, scanning from `hint`+1 with wraparound. */
CpuId
leastLoadedFrom(const CpuMask &mask, CpuId hint,
                const std::function<unsigned(CpuId)> &load)
{
    CpuId best = kInvalidCpu;
    unsigned best_load = std::numeric_limits<unsigned>::max();
    // Two sweeps emulate a circular scan starting after the hint.
    auto consider = [&](CpuId c) {
        const unsigned l = load(c);
        if (l < best_load) {
            best_load = l;
            best = c;
        }
    };
    bool past_hint = hint == kInvalidCpu;
    for (CpuId c : mask) {
        if (past_hint)
            consider(c);
        if (c == hint)
            past_hint = true;
    }
    for (CpuId c : mask) {
        consider(c);
        if (c == hint)
            break;
    }
    return best;
}

} // namespace

CpuId
Kernel::selectCpu(Thread *t)
{
    const CpuMask &allowed = t->affinity();
    const CpuId prev = t->ec().lastCpu();
    auto load = [this](CpuId c) { return cpuLoad(c); };

    if (prev == kInvalidCpu) {
        // Fork/exec balancing: place on the least-loaded allowed CPU.
        return leastLoadedFrom(allowed, kInvalidCpu, load);
    }

    // 1. The previous CPU, if it is idle and still allowed.
    if (allowed.test(prev) && cpuIdle(prev))
        return prev;

    // 2. An idle CPU in the previous LLC (CCX) domain.
    const CpuMask ccx_mask =
        machine_.cpusOfCcx(machine_.ccxOf(prev)) & allowed;
    CpuId c = findIdleIn(ccx_mask);
    if (c != kInvalidCpu)
        return c;

    // 3. An idle CPU in the previous NUMA node.
    const CpuMask node_mask =
        machine_.cpusOfNode(machine_.nodeOf(prev)) & allowed;
    c = findIdleIn(node_mask);
    if (c != kInvalidCpu)
        return c;

    // 4. Any idle allowed CPU.
    c = findIdleIn(allowed);
    if (c != kInvalidCpu)
        return c;

    // 5. Nothing idle: least-loaded queue, preferring the local CCX.
    if (!ccx_mask.empty()) {
        const CpuId local = leastLoadedFrom(ccx_mask, prev, load);
        // Only stay local when the local queues are not clearly worse
        // than the best queue anywhere.
        const CpuId global = leastLoadedFrom(allowed, prev, load);
        if (local != kInvalidCpu &&
            cpuLoad(local) <= cpuLoad(global) + 1) {
            return local;
        }
        return global;
    }
    return leastLoadedFrom(allowed, prev, load);
}

void
Kernel::enqueue(Thread *t, CpuId cpu)
{
    if (t->state_ == Thread::State::Runnable)
        MS_PANIC("enqueue of already-queued thread ", t->name());
    t->state_ = Thread::State::Runnable;
    t->rq_cpu_ = cpu;
    t->vruntime_ = std::max(t->vruntime_, min_vruntime_[cpu]);
    rq_[cpu].push_back(t);
}

Thread *
Kernel::dequeueNext(CpuId cpu)
{
    auto &q = rq_[cpu];
    if (q.empty())
        return nullptr;
    auto best = q.begin();
    for (auto it = std::next(q.begin()); it != q.end(); ++it) {
        if ((*it)->vruntime_ < (*best)->vruntime_)
            best = it;
    }
    Thread *t = *best;
    q.erase(best);
    t->rq_cpu_ = kInvalidCpu;
    return t;
}

void
Kernel::removeFromQueue(Thread *t)
{
    if (t->rq_cpu_ == kInvalidCpu)
        MS_PANIC("removeFromQueue of unqueued thread ", t->name());
    auto &q = rq_[t->rq_cpu_];
    auto it = std::find(q.begin(), q.end(), t);
    if (it == q.end())
        MS_PANIC("thread ", t->name(), " missing from its run queue");
    q.erase(it);
    t->rq_cpu_ = kInvalidCpu;
}

void
Kernel::wake(Thread *t)
{
    ++stats_.wakeups;
    ++t->ec().counters().wakeups;
    const CpuId cpu = selectCpu(t);
    enqueue(t, cpu);
    schedule(cpu);
}

void
Kernel::onAffinityChanged(Thread *t)
{
    switch (t->state_) {
      case Thread::State::Blocked:
        break;
      case Thread::State::Runnable:
        if (!t->affinity().test(t->rq_cpu_)) {
            removeFromQueue(t);
            t->state_ = Thread::State::Blocked;
            const CpuId cpu = selectCpu(t);
            enqueue(t, cpu);
            schedule(cpu);
        }
        break;
      case Thread::State::Running: {
        const CpuId cpu = t->ec().cpu();
        // Mid-switch threads get re-checked at the next tick.
        if (cpu != kInvalidCpu && !t->affinity().test(cpu))
            preempt(cpu);
        break;
      }
    }
}

void
Kernel::schedule(CpuId cpu)
{
    if (engine_.runningOn(cpu) || reserved_[cpu])
        return;
    Thread *t = dequeueNext(cpu);
    if (!t) {
        if (params_.newIdleSteal && started_)
            newIdlePull(cpu);
        return;
    }
    dispatch(t, cpu);
}

void
Kernel::dispatch(Thread *t, CpuId cpu)
{
    if (t->state_ != Thread::State::Runnable &&
        t->state_ != Thread::State::Blocked) {
        MS_PANIC("dispatch of thread ", t->name(), " in bad state");
    }
    t->state_ = Thread::State::Running;
    min_vruntime_[cpu] = std::max(min_vruntime_[cpu], t->vruntime_);

    const CpuId prev = t->ec().lastCpu();
    if (prev != kInvalidCpu && prev != cpu) {
        ++stats_.migrations;
        if (machine_.ccxOf(prev) != machine_.ccxOf(cpu))
            ++stats_.ccxMigrations;
    }

    const bool needs_switch =
        last_ran_[cpu] != t && params_.switchCost > 0;
    if (!needs_switch) {
        on_cpu_[cpu] = t;
        last_ran_[cpu] = t;
        t->last_dispatch_ = sim_.now();
        engine_.startRun(t->ec(), cpu);
        return;
    }

    reserved_[cpu] = t;
    engine_.chargeOverhead(cpu, params_.switchCost, &t->ec().counters());
    sim_.scheduleAfter(params_.switchCost, [this, t, cpu] {
        if (reserved_[cpu] != t)
            MS_PANIC("switch reservation lost on cpu ", cpu);
        reserved_[cpu] = nullptr;
        on_cpu_[cpu] = t;
        last_ran_[cpu] = t;
        t->last_dispatch_ = sim_.now();
        engine_.startRun(t->ec(), cpu);
    });
}

void
Kernel::onWorkComplete(Thread *t)
{
    // The engine has already detached the context from its CPU.
    const CpuId cpu = t->ec().lastCpu();
    t->vruntime_ +=
        static_cast<double>(sim_.now() - t->last_dispatch_);
    t->state_ = Thread::State::Blocked;
    on_cpu_[cpu] = nullptr;
    ++stats_.contextSwitches;
    ++t->ec().counters().contextSwitches;

    // Let the freed CPU pick its next thread before the user callback
    // possibly re-submits this one.
    schedule(cpu);

    sim::EventFn cb = std::move(t->user_cb_);
    if (cb)
        cb();
}

void
Kernel::preempt(CpuId cpu)
{
    Thread *t = on_cpu_[cpu];
    if (!t || !t->ec().running())
        return;
    engine_.stopRun(t->ec());
    t->vruntime_ +=
        static_cast<double>(sim_.now() - t->last_dispatch_);
    on_cpu_[cpu] = nullptr;
    t->state_ = Thread::State::Blocked; // transiently, for enqueue
    ++stats_.preemptions;
    ++stats_.contextSwitches;
    ++t->ec().counters().contextSwitches;

    if (t->affinity().test(cpu)) {
        enqueue(t, cpu);
    } else {
        const CpuId target = selectCpu(t);
        enqueue(t, target);
        schedule(target);
    }
    schedule(cpu);
}

void
Kernel::preemptTick()
{
    const Tick now = sim_.now();
    for (CpuId cpu = 0; cpu < machine_.numCpus(); ++cpu) {
        Thread *t = on_cpu_[cpu];
        if (!t || reserved_[cpu])
            continue;
        if (!t->ec().running())
            continue;
        // Preempt a thread off a CPU its affinity no longer allows.
        if (!t->affinity().test(cpu)) {
            preempt(cpu);
            continue;
        }
        if (now - t->last_dispatch_ < params_.timeslice)
            continue;
        if (rq_[cpu].empty())
            continue;
        const double run_vr =
            t->vruntime_ +
            static_cast<double>(now - t->last_dispatch_);
        double min_queued = std::numeric_limits<double>::max();
        for (Thread *q : rq_[cpu])
            min_queued = std::min(min_queued, q->vruntime_);
        if (min_queued < run_vr)
            preempt(cpu);
    }
}

Thread *
Kernel::stealFrom(const CpuMask &domain, CpuId for_cpu)
{
    // Find the deepest queue in the domain holding a thread that is
    // allowed to run on for_cpu.
    CpuId busiest = kInvalidCpu;
    std::size_t depth = 0;
    for (CpuId c : domain) {
        if (c == for_cpu)
            continue;
        if (rq_[c].size() > depth) {
            bool eligible = false;
            for (Thread *q : rq_[c]) {
                if (q->affinity().test(for_cpu)) {
                    eligible = true;
                    break;
                }
            }
            if (eligible) {
                depth = rq_[c].size();
                busiest = c;
            }
        }
    }
    if (busiest == kInvalidCpu)
        return nullptr;
    for (Thread *q : rq_[busiest]) {
        if (q->affinity().test(for_cpu)) {
            removeFromQueue(q);
            q->state_ = Thread::State::Blocked; // transiently
            return q;
        }
    }
    return nullptr;
}

bool
Kernel::newIdlePull(CpuId cpu)
{
    // Widening search: CCX, then node, then the whole machine.
    const CpuMask domains[] = {
        machine_.cpusOfCcx(machine_.ccxOf(cpu)),
        machine_.cpusOfNode(machine_.nodeOf(cpu)),
        machine_.allCpus(),
    };
    for (const CpuMask &d : domains) {
        Thread *t = stealFrom(d, cpu);
        if (t) {
            ++stats_.newIdlePulls;
            enqueue(t, cpu);
            schedule(cpu);
            return true;
        }
    }
    return false;
}

void
Kernel::balancePass()
{
    for (CpuId cpu = 0; cpu < machine_.numCpus(); ++cpu) {
        if (!cpuIdle(cpu))
            continue;
        const CpuMask domains[] = {
            machine_.cpusOfCcx(machine_.ccxOf(cpu)),
            machine_.cpusOfNode(machine_.nodeOf(cpu)),
            machine_.allCpus(),
        };
        for (const CpuMask &d : domains) {
            Thread *t = stealFrom(d, cpu);
            if (t) {
                ++stats_.balancePulls;
                enqueue(t, cpu);
                schedule(cpu);
                break;
            }
        }
    }
}

} // namespace microscale::os
