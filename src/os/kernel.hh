/**
 * @file
 * os::Kernel - the operating-system scheduler model.
 *
 * Approximates the behaviour of a general-purpose (CFS-like) scheduler
 * on a big SMT server, because the paper's optimizations consist of
 * *overriding* exactly this behaviour with topology knowledge:
 *
 *  - per-CPU run queues ordered by vruntime;
 *  - wake placement that prefers the last CPU, then an idle CPU in the
 *    same LLC (CCX) domain, then the node, then anywhere allowed;
 *  - periodic preemption at a fixed timeslice;
 *  - new-idle stealing when a CPU runs out of work;
 *  - periodic load balancing that pulls work to idle CPUs.
 *
 * Context switches cost CPU time, and cross-CCX migrations trigger the
 * execution engine's cold-cache refill penalty.
 */

#ifndef MICROSCALE_OS_KERNEL_HH
#define MICROSCALE_OS_KERNEL_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "base/cpumask.hh"
#include "base/random.hh"
#include "base/types.hh"
#include "cpu/exec.hh"
#include "os/thread.hh"
#include "sim/simulation.hh"
#include "topo/machine.hh"

namespace microscale::os
{

/** Scheduler tunables. */
struct SchedParams
{
    /** Preemption quantum. */
    Tick timeslice = kMillisecond;
    /** Period of the load-balancing pass. */
    Tick balancePeriod = 4 * kMillisecond;
    /** CPU cost of switching between two distinct threads. */
    Tick switchCost = 2 * kMicrosecond;
    /** Enable the periodic load balancer. */
    bool loadBalance = true;
    /** Enable stealing when a CPU becomes idle. */
    bool newIdleSteal = true;
};

/** Aggregate scheduler activity over a run. */
struct SchedStats
{
    std::uint64_t wakeups = 0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t migrations = 0;
    std::uint64_t ccxMigrations = 0;
    std::uint64_t balancePulls = 0;
    std::uint64_t newIdlePulls = 0;
};

/**
 * The scheduler. Owns all threads; drives the cpu::ExecEngine.
 */
class Kernel
{
  public:
    Kernel(sim::Simulation &sim, const topo::Machine &machine,
           cpu::ExecEngine &engine, SchedParams params,
           std::uint64_t seed = 1);

    ~Kernel();
    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    const topo::Machine &machine() const { return machine_; }
    cpu::ExecEngine &engine() { return engine_; }
    sim::Simulation &sim() { return sim_; }
    const SchedParams &params() const { return params_; }

    /**
     * Create a thread.
     * @param affinity allowed CPUs (must intersect the machine).
     * @param home_node NUMA node for the thread's memory, or
     *        kInvalidNode for first-touch (node of first dispatch).
     */
    Thread *createThread(std::string name, CpuMask affinity,
                         NodeId home_node = kInvalidNode);

    /** All threads, in creation order. */
    const std::vector<std::unique_ptr<Thread>> &threads() const
    {
        return threads_;
    }

    /** Start the periodic tick and balancer (idempotent). */
    void start();

    /** Stop periodic machinery (e.g. at teardown). */
    void stop();

    /** Scheduler activity counters. */
    const SchedStats &stats() const { return stats_; }

    /** Runnable-but-waiting thread count (queue depth) on a CPU. */
    std::size_t queueDepth(CpuId cpu) const { return rq_[cpu].size(); }

  private:
    friend class Thread;

    /** Called by Thread::run to make a thread runnable. */
    void wake(Thread *t);

    /** Called by Thread::setAffinity to re-place the thread if needed. */
    void onAffinityChanged(Thread *t);

    /** Wake placement: choose the CPU to enqueue a waking thread on. */
    CpuId selectCpu(Thread *t);

    /** True when the CPU has no running, reserved, or queued thread. */
    bool cpuIdle(CpuId cpu) const;

    /** Instantaneous load: running (incl. reserved) + queued. */
    unsigned cpuLoad(CpuId cpu) const;

    /** First idle allowed CPU in `mask`, preferring whole idle cores. */
    CpuId findIdleIn(const CpuMask &mask) const;

    void enqueue(Thread *t, CpuId cpu);
    Thread *dequeueNext(CpuId cpu);
    void removeFromQueue(Thread *t);

    /** If `cpu` is free, dispatch the next queued thread onto it. */
    void schedule(CpuId cpu);

    /** Place a specific thread onto a free CPU (handles switch cost). */
    void dispatch(Thread *t, CpuId cpu);

    /** Engine callback: thread's work item retired. */
    void onWorkComplete(Thread *t);

    /** Periodic preemption pass over all busy CPUs. */
    void preemptTick();

    /** Preempt the running thread on a CPU (stays runnable). */
    void preempt(CpuId cpu);

    /** Periodic load balancing: pull work towards idle CPUs. */
    void balancePass();

    /** Steal one runnable thread for a newly idle CPU. */
    bool newIdlePull(CpuId cpu);

    /** Try to steal for `cpu` from queues in `domain` - `exclude`. */
    Thread *stealFrom(const CpuMask &domain, CpuId for_cpu);

    sim::Simulation &sim_;
    const topo::Machine &machine_;
    cpu::ExecEngine &engine_;
    SchedParams params_;
    Rng rng_;

    std::vector<std::unique_ptr<Thread>> threads_;
    std::vector<std::deque<Thread *>> rq_; // per-cpu runnable threads
    std::vector<Thread *> on_cpu_;         // dispatched thread per cpu
    std::vector<Thread *> reserved_;       // mid-switch occupant per cpu
    std::vector<Thread *> last_ran_;       // previous occupant per cpu
    std::vector<double> min_vruntime_;     // per-cpu floor

    sim::PeriodicEvent tick_;
    sim::PeriodicEvent balancer_;
    bool started_ = false;

    SchedStats stats_;
    std::uint32_t next_tid_ = 1;
};

} // namespace microscale::os

#endif // MICROSCALE_OS_KERNEL_HH
