/**
 * @file
 * LoadSchedule: a deterministic, piecewise time-varying request rate.
 *
 * A schedule is a sorted list of control points; between two points the
 * rate either interpolates linearly (ramps) or holds the previous value
 * until the next point (steps). Factories build the canonical shapes
 * the elasticity experiments use: constant, flash-crowd spike and
 * diurnal sine. An empty schedule means "no schedule" - the open-loop
 * driver then keeps its legacy fixed-rate arrival process, so every
 * existing experiment is untouched.
 */

#ifndef MICROSCALE_LOADGEN_SCHEDULE_HH
#define MICROSCALE_LOADGEN_SCHEDULE_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace microscale::loadgen
{

/** One control point of a schedule. */
struct RatePoint
{
    Tick at = 0;
    double rps = 0.0;
    /**
     * Hold the previous point's rate until `at` (discontinuous step)
     * instead of interpolating linearly from the previous point.
     */
    bool step = false;
};

/**
 * A piecewise rate function over simulated time. Before the first
 * point the first rate applies; after the last point the last rate
 * holds forever.
 */
class LoadSchedule
{
  public:
    /** Empty schedule: "no schedule" (drivers use their fixed rate). */
    LoadSchedule() = default;

    /** A flat schedule at `rps` (useful as an explicit baseline). */
    static LoadSchedule constant(double rps);

    /**
     * Flash crowd: `baseRps` until `spikeAt`, linear ramp to `peakRps`
     * over `rampUp`, hold for `hold`, linear ramp back over `rampDown`.
     */
    static LoadSchedule spike(double baseRps, double peakRps, Tick spikeAt,
                              Tick rampUp, Tick hold, Tick rampDown);

    /**
     * Diurnal sine: oscillates between `baseRps` (trough) and
     * `baseRps + amplitude` (crest) with the given `period`, starting
     * at the trough. The sine is sampled into `segmentsPerPeriod`
     * linear segments per period out to `horizon`.
     */
    static LoadSchedule diurnal(double baseRps, double amplitude,
                                Tick period, Tick horizon,
                                unsigned segmentsPerPeriod = 48);

    /** Append a linear-interpolation control point (at must not go back). */
    LoadSchedule &addPoint(Tick at, double rps);

    /** Append a step: hold the previous rate, jump to `rps` at `at`. */
    LoadSchedule &addStep(Tick at, double rps);

    /** True when no points were added ("no schedule"). */
    bool empty() const { return points_.empty(); }

    /** The rate at time `t`, requests per second. */
    double rateAt(Tick t) const;

    /** The maximum rate over all points (thinning envelope). */
    double peakRate() const;

    /** Exact mean rate over [start, end) by piecewise integration. */
    double meanRate(Tick start, Tick end) const;

    /** Schedule name for labels/reports ("spike", "diurnal", ...). */
    const std::string &name() const { return name_; }
    LoadSchedule &setName(std::string name);

    const std::vector<RatePoint> &points() const { return points_; }

  private:
    std::vector<RatePoint> points_;
    std::string name_ = "constant";
};

} // namespace microscale::loadgen

#endif // MICROSCALE_LOADGEN_SCHEDULE_HH
