#include "loadgen/driver.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "base/logging.hh"
#include "chaos/ledger.hh"

namespace microscale::loadgen
{

using teastore::OpType;

void
Measurement::setWindow(Tick start, Tick end)
{
    if (end <= start)
        MS_PANIC("measurement window end <= start");
    start_ = start;
    end_ = end;
}

void
Measurement::record(OpType op, Tick issued, Tick completed)
{
    record(op, issued, completed, svc::Status::Ok, false);
}

void
Measurement::record(OpType op, Tick issued, Tick completed,
                    svc::Status status, bool degraded)
{
    if (completed < start_ || completed >= end_)
        return;
    ++completed_;
    ++status_counts_[static_cast<unsigned>(status)];
    if (status != svc::Status::Ok)
        return;
    if (degraded)
        ++degraded_;
    const double lat = static_cast<double>(completed - issued);
    latency_.add(lat);
    per_op_[static_cast<unsigned>(op)].add(lat);
    ++per_op_count_[static_cast<unsigned>(op)];
}

double
Measurement::throughputRps() const
{
    if (end_ == kTickNever || end_ <= start_)
        return 0.0;
    const double window_s = ticksToSeconds(end_ - start_);
    return static_cast<double>(completed_) / window_s;
}

double
Measurement::goodputRps() const
{
    if (end_ == kTickNever || end_ <= start_)
        return 0.0;
    const double window_s = ticksToSeconds(end_ - start_);
    return static_cast<double>(statusCount(svc::Status::Ok)) / window_s;
}

std::uint64_t
Measurement::errorCount() const
{
    return completed_ - statusCount(svc::Status::Ok);
}

ClosedLoopDriver::ClosedLoopDriver(teastore::App &app, BrowseMix mix,
                                   ClosedLoopParams params,
                                   std::uint64_t seed)
    : app_(app), mix_(std::move(mix)), params_(params)
{
    if (params_.users == 0)
        fatal("closed-loop driver needs at least one user");
    if (params_.fluidThreshold > 0 &&
        params_.users >= params_.fluidThreshold) {
        fluid_ = std::make_unique<FluidState>(seed);
        return;
    }
    users_.reserve(params_.users);
    for (unsigned u = 0; u < params_.users; ++u) {
        users_.push_back(std::make_unique<User>(
            Rng(seed, "loadgen.user." + std::to_string(u)),
            mix_.initialOp()));
    }
}

void
ClosedLoopDriver::start()
{
    if (started_)
        MS_PANIC("ClosedLoopDriver started twice");
    started_ = true;
    auto &sim = app_.mesh().kernel().sim();
    if (fluidMode()) {
        fluid_->notYetIn = params_.users;
        fluid_->rampEnd =
            sim.now() + std::max<Tick>(1, params_.rampTime);
        scheduleNextFluid();
        return;
    }
    for (std::size_t u = 0; u < users_.size(); ++u) {
        const Tick ramp =
            params_.rampTime > 0
                ? static_cast<Tick>(users_[u]->rng.uniformReal(
                      0.0, static_cast<double>(params_.rampTime)))
                : 0;
        sim.scheduleAfter(std::max<Tick>(1, ramp),
                          [this, u] { issue(u); });
    }
}

void
ClosedLoopDriver::fluidRates(Tick now, double &ramp, double &think) const
{
    // Ramp pool: per-user mode draws N first-issue times uniform over
    // [0, rampTime]; with k of them still outside at time t the
    // order-statistics hazard is k / (rampEnd - t). Think pool: the
    // minimum of M exponential(Z) think timers is exponential(Z/M),
    // so the pooled rate is M/Z. Both in events per tick.
    ramp = 0.0;
    if (fluid_->notYetIn > 0 && now < fluid_->rampEnd)
        ramp = static_cast<double>(fluid_->notYetIn) /
               static_cast<double>(fluid_->rampEnd - now);
    think = static_cast<double>(fluid_->thinking) /
            static_cast<double>(params_.meanThink);
}

void
ClosedLoopDriver::scheduleNextFluid()
{
    if (stopped_)
        return;
    auto &sim = app_.mesh().kernel().sim();
    const Tick now = sim.now();
    if (fluid_->notYetIn > 0 && now >= fluid_->rampEnd) {
        // Ramp window closed with users still outside (the window is
        // open-ended in per-user mode too: draws at exactly rampTime
        // round up). Drain them immediately, one per tick.
        fluid_->next = sim.scheduleAfter(1, [this] { fluidFire(); });
        return;
    }
    double ramp = 0.0, think = 0.0;
    fluidRates(now, ramp, think);
    const double rate = ramp + think;
    if (rate <= 0.0)
        return; // every user is in flight; responses re-arm
    // The pooled hazard is piecewise constant between state changes
    // (exact for the think pool, the ramp hazard varies slowly), and
    // every state change cancels and redraws, so drawing a single
    // exponential gap at the combined rate is faithful.
    const double gap = fluid_->gaps.next() / rate;
    fluid_->next = sim.scheduleAfter(
        std::max<Tick>(1, static_cast<Tick>(std::llround(gap))),
        [this] { fluidFire(); });
}

void
ClosedLoopDriver::fluidFire()
{
    if (stopped_)
        return;
    double ramp = 0.0, think = 0.0;
    fluidRates(app_.mesh().kernel().sim().now(), ramp, think);
    bool from_ramp;
    if (fluid_->notYetIn == 0) {
        from_ramp = false;
    } else if (think <= 0.0 || ramp <= 0.0) {
        // Nobody thinking, or the ramp window closed with users still
        // outside (post-window drain): the firing must come from the
        // ramp pool.
        from_ramp = true;
    } else {
        from_ramp =
            fluid_->rng.uniform01() * (ramp + think) < ramp;
    }
    if (from_ramp) {
        --fluid_->notYetIn;
    } else if (fluid_->thinking > 0) {
        --fluid_->thinking;
    } else {
        scheduleNextFluid();
        return;
    }
    issueFluid();
    scheduleNextFluid();
}

void
ClosedLoopDriver::issueFluid()
{
    // Ops come from the stationary distribution of the browse chain
    // rather than per-user Markov walks: the pooled stream sees the
    // time-average mix, which is what the chain converges to.
    const OpType op = mix_.sampleStationary(fluid_->rng);
    const Tick issued_at = app_.mesh().kernel().sim().now();
    ++issued_;
    ++fluid_->inflight;
    const std::uint64_t lid =
        params_.ledger ? params_.ledger->open() : 0;
    svc::Payload req = app_.sampleRequest(op, fluid_->rng);
    app_.mesh().callExternalS(
        teastore::names::kWebui, teastore::opName(op), req,
        [this, op, issued_at, lid](const svc::Payload &resp,
                                   svc::Status status) {
            if (params_.ledger)
                params_.ledger->close(lid, status);
            onFluidResponse(op, issued_at, status, resp.degraded);
        });
}

void
ClosedLoopDriver::onFluidResponse(OpType op, Tick issued_at,
                                  svc::Status status, bool degraded)
{
    auto &sim = app_.mesh().kernel().sim();
    measurement_.record(op, issued_at, sim.now(), status, degraded);
    --fluid_->inflight;
    if (stopped_)
        return;
    if (params_.retreatBase > 0 && status != svc::Status::Ok) {
        // First-level retreat only: the pool cannot know which user
        // failed how many times in a row, so every failure waits the
        // base backoff. Under sustained shedding this under-retreats
        // relative to per-user mode; acceptable at fluid scale.
        ++fluid_->retreating;
        sim.scheduleAfter(retreatBackoff(params_.retreatBase, 1),
                          [this] {
                              --fluid_->retreating;
                              if (stopped_)
                                  return;
                              ++fluid_->thinking;
                              fluid_->next.cancel();
                              scheduleNextFluid();
                          });
        return;
    }
    ++fluid_->thinking;
    // Memorylessness makes cancel-and-redraw at the new pooled rate
    // distributionally exact; no per-user timer needs to survive.
    fluid_->next.cancel();
    scheduleNextFluid();
}

void
ClosedLoopDriver::issue(std::size_t user_index)
{
    if (stopped_)
        return;
    User &user = *users_[user_index];
    const OpType op = user.current;
    const Tick issued_at = app_.mesh().kernel().sim().now();
    ++issued_;
    const std::uint64_t lid =
        params_.ledger ? params_.ledger->open() : 0;
    svc::Payload req = app_.sampleRequest(op, user.rng);
    app_.mesh().callExternalS(
        teastore::names::kWebui, teastore::opName(op), req,
        [this, user_index, op, issued_at, lid](const svc::Payload &resp,
                                               svc::Status status) {
            if (params_.ledger)
                params_.ledger->close(lid, status);
            onResponse(user_index, op, issued_at, status,
                       resp.degraded);
        });
}

void
ClosedLoopDriver::onResponse(std::size_t user_index, OpType op,
                             Tick issued_at, svc::Status status,
                             bool degraded)
{
    auto &sim = app_.mesh().kernel().sim();
    measurement_.record(op, issued_at, sim.now(), status, degraded);
    if (stopped_)
        return;
    User &user = *users_[user_index];
    user.current = mix_.next(op, user.rng);
    if (params_.retreatBase > 0 && status != svc::Status::Ok) {
        // Backpressure retreat: a shedding or failing server gets
        // exponentially longer pauses, not immediate re-offers. The
        // wait is deterministic so enabling the retreat never
        // perturbs the user's RNG stream.
        ++user.consecutiveFailures;
        sim.scheduleAfter(
            retreatBackoff(params_.retreatBase, user.consecutiveFailures),
            [this, user_index] { issue(user_index); });
        return;
    }
    user.consecutiveFailures = 0;
    const double think = user.rng.exponential(
        static_cast<double>(params_.meanThink));
    sim.scheduleAfter(
        std::max<Tick>(1, static_cast<Tick>(std::llround(think))),
        [this, user_index] { issue(user_index); });
}

OpenLoopDriver::OpenLoopDriver(teastore::App &app, BrowseMix mix,
                               OpenLoopParams params, std::uint64_t seed)
    : app_(app),
      mix_(std::move(mix)),
      params_(std::move(params)),
      rng_(seed, "loadgen.openloop")
{
    if (params_.schedule.empty()) {
        if (params_.arrivalRps <= 0.0)
            fatal("open-loop driver needs a positive arrival rate");
    } else if (params_.schedule.peakRate() <= 0.0) {
        fatal("open-loop schedule needs a positive peak rate");
    }
    if (params_.batchedArrivals && params_.schedule.empty()) {
        // Fixed-rate gaps come pre-drawn in blocks from their own
        // stream; op and payload draws stay on rng_, so the two
        // consumers never interleave on one engine.
        gap_rng_ = std::make_unique<Rng>(seed, "loadgen.openloop.gaps");
        gaps_ = std::make_unique<SampleBatch>(
            *gap_rng_, SampleBatch::Kind::Exponential,
            static_cast<double>(kSecond) / params_.arrivalRps);
    }
}

void
OpenLoopDriver::start()
{
    if (started_)
        MS_PANIC("OpenLoopDriver started twice");
    started_ = true;
    scheduleNext();
}

double
OpenLoopDriver::currentRate() const
{
    if (params_.schedule.empty())
        return params_.arrivalRps;
    return params_.schedule.rateAt(app_.mesh().kernel().sim().now());
}

void
OpenLoopDriver::scheduleNext()
{
    if (stopped_)
        return;
    auto &sim = app_.mesh().kernel().sim();
    if (params_.schedule.empty()) {
        const double mean_gap_ns =
            static_cast<double>(kSecond) / params_.arrivalRps;
        const double gap =
            gaps_ ? gaps_->next() : rng_.exponential(mean_gap_ns);
        sim.scheduleAfter(
            std::max<Tick>(1, static_cast<Tick>(std::llround(gap))),
            [this] { arrival(); });
        return;
    }
    // Non-homogeneous Poisson by thinning (Lewis-Shedler): draw
    // candidate gaps at the schedule's peak rate and accept each
    // candidate with probability rate(t)/peak. Rejected candidates
    // advance time without scheduling an event.
    const double peak = params_.schedule.peakRate();
    const double mean_gap_ns = static_cast<double>(kSecond) / peak;
    Tick t = sim.now();
    for (unsigned draws = 0;; ++draws) {
        if (draws > 10'000'000)
            fatal("open-loop thinning failed to accept an arrival; "
                  "does the schedule decay to zero?");
        const double gap = rng_.exponential(mean_gap_ns);
        t += std::max<Tick>(1, static_cast<Tick>(std::llround(gap)));
        if (rng_.uniform01() * peak <= params_.schedule.rateAt(t))
            break;
    }
    sim.scheduleAt(t, [this] { arrival(); });
}

void
OpenLoopDriver::arrival()
{
    if (stopped_)
        return;
    const OpType op = mix_.sampleStationary(rng_);
    const Tick issued_at = app_.mesh().kernel().sim().now();
    if (params_.arrivalLog)
        params_.arrivalLog->push_back(issued_at);
    ++issued_;
    ++in_flight_;
    const std::uint64_t lid =
        params_.ledger ? params_.ledger->open() : 0;
    svc::Payload req = app_.sampleRequest(op, rng_);
    app_.mesh().callExternalS(
        teastore::names::kWebui, teastore::opName(op), req,
        [this, op, issued_at, lid](const svc::Payload &resp,
                                   svc::Status status) {
            --in_flight_;
            if (params_.ledger)
                params_.ledger->close(lid, status);
            measurement_.record(op, issued_at,
                                app_.mesh().kernel().sim().now(),
                                status, resp.degraded);
        });
    scheduleNext();
}

} // namespace microscale::loadgen
