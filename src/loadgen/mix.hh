/**
 * @file
 * The "browse profile" request mix: a Markov chain over the WebUI
 * operations approximating the user behaviour model shipped with
 * TeaStore's load driver (browse, view products, occasionally buy).
 */

#ifndef MICROSCALE_LOADGEN_MIX_HH
#define MICROSCALE_LOADGEN_MIX_HH

#include <array>
#include <vector>

#include "base/random.hh"
#include "teastore/app.hh"

namespace microscale::loadgen
{

/**
 * Markov transition model over OpType with a precomputed stationary
 * distribution (for open-loop sampling).
 */
class BrowseMix
{
  public:
    /** The default browse profile. */
    BrowseMix();

    /** Construct from an explicit row-stochastic transition matrix. */
    explicit BrowseMix(
        std::array<std::array<double, teastore::kNumOps>,
                   teastore::kNumOps>
            transitions);

    /** The op a fresh session starts with. */
    teastore::OpType initialOp() const { return teastore::OpType::Home; }

    /** Sample the op following `current`. */
    teastore::OpType next(teastore::OpType current, Rng &rng) const;

    /** Sample from the stationary distribution. */
    teastore::OpType sampleStationary(Rng &rng) const;

    /** Stationary probability of an op. */
    double stationaryWeight(teastore::OpType op) const;

  private:
    void computeStationary();

    std::array<std::array<double, teastore::kNumOps>, teastore::kNumOps>
        transitions_;
    std::array<double, teastore::kNumOps> stationary_{};
};

} // namespace microscale::loadgen

#endif // MICROSCALE_LOADGEN_MIX_HH
