#include "loadgen/schedule.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace microscale::loadgen
{

LoadSchedule
LoadSchedule::constant(double rps)
{
    if (rps <= 0.0)
        fatal("constant schedule needs a positive rate");
    LoadSchedule s;
    s.addPoint(0, rps);
    s.setName("constant");
    return s;
}

LoadSchedule
LoadSchedule::spike(double baseRps, double peakRps, Tick spikeAt,
                    Tick rampUp, Tick hold, Tick rampDown)
{
    if (baseRps <= 0.0 || peakRps < baseRps)
        fatal("spike schedule needs 0 < base <= peak");
    LoadSchedule s;
    s.addPoint(0, baseRps);
    s.addPoint(spikeAt, baseRps);
    s.addPoint(spikeAt + rampUp, peakRps);
    s.addPoint(spikeAt + rampUp + hold, peakRps);
    s.addPoint(spikeAt + rampUp + hold + rampDown, baseRps);
    s.setName("spike");
    return s;
}

LoadSchedule
LoadSchedule::diurnal(double baseRps, double amplitude, Tick period,
                      Tick horizon, unsigned segmentsPerPeriod)
{
    if (baseRps <= 0.0 || amplitude < 0.0)
        fatal("diurnal schedule needs positive base and amplitude >= 0");
    if (period == 0 || segmentsPerPeriod < 4)
        fatal("diurnal schedule needs a period and >= 4 segments");
    LoadSchedule s;
    const double two_pi = 2.0 * 3.14159265358979323846;
    const Tick seg = std::max<Tick>(1, period / segmentsPerPeriod);
    for (Tick t = 0;; t += seg) {
        const double phase =
            two_pi * static_cast<double>(t) / static_cast<double>(period);
        // Starts at the trough (base), crests at base + amplitude.
        const double rate =
            baseRps + amplitude * 0.5 * (1.0 - std::cos(phase));
        s.addPoint(t, rate);
        if (t >= horizon)
            break;
    }
    s.setName("diurnal");
    return s;
}

LoadSchedule &
LoadSchedule::addPoint(Tick at, double rps)
{
    if (rps < 0.0)
        fatal("schedule rate must be >= 0");
    if (!points_.empty() && at < points_.back().at)
        fatal("schedule points must not go back in time");
    points_.push_back(RatePoint{at, rps, false});
    return *this;
}

LoadSchedule &
LoadSchedule::addStep(Tick at, double rps)
{
    if (rps < 0.0)
        fatal("schedule rate must be >= 0");
    if (!points_.empty() && at < points_.back().at)
        fatal("schedule points must not go back in time");
    points_.push_back(RatePoint{at, rps, true});
    return *this;
}

double
LoadSchedule::rateAt(Tick t) const
{
    if (points_.empty())
        return 0.0;
    if (t <= points_.front().at)
        return points_.front().rps;
    if (t >= points_.back().at)
        return points_.back().rps;
    // Find the segment [i, i+1) containing t.
    std::size_t lo = 0, hi = points_.size() - 1;
    while (lo + 1 < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (points_[mid].at <= t)
            lo = mid;
        else
            hi = mid;
    }
    const RatePoint &a = points_[lo];
    const RatePoint &b = points_[hi];
    if (b.step || b.at == a.at)
        return a.rps;
    const double f = static_cast<double>(t - a.at) /
                     static_cast<double>(b.at - a.at);
    return a.rps + f * (b.rps - a.rps);
}

double
LoadSchedule::peakRate() const
{
    double peak = 0.0;
    for (const RatePoint &p : points_)
        peak = std::max(peak, p.rps);
    return peak;
}

double
LoadSchedule::meanRate(Tick start, Tick end) const
{
    if (end <= start || points_.empty())
        return 0.0;
    // Integrate the piecewise function over [start, end): trapezoids
    // for linear segments, rectangles for step holds and the flat
    // regions before the first / after the last point.
    double area = 0.0;
    auto addLinear = [&](Tick a_at, double a_rps, Tick b_at,
                         double b_rps) {
        const Tick lo = std::max(a_at, start);
        const Tick hi = std::min(b_at, end);
        if (hi <= lo || b_at == a_at)
            return;
        const double span = static_cast<double>(b_at - a_at);
        const double r_lo =
            a_rps + (b_rps - a_rps) *
                        static_cast<double>(lo - a_at) / span;
        const double r_hi =
            a_rps + (b_rps - a_rps) *
                        static_cast<double>(hi - a_at) / span;
        area += 0.5 * (r_lo + r_hi) * static_cast<double>(hi - lo);
    };
    // Flat head.
    if (start < points_.front().at)
        addLinear(start, points_.front().rps, points_.front().at,
                  points_.front().rps);
    for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
        const RatePoint &a = points_[i];
        const RatePoint &b = points_[i + 1];
        if (b.step)
            addLinear(a.at, a.rps, b.at, a.rps);
        else
            addLinear(a.at, a.rps, b.at, b.rps);
    }
    // Flat tail.
    if (end > points_.back().at)
        addLinear(std::max(points_.back().at, start), points_.back().rps,
                  end, points_.back().rps);
    return area / static_cast<double>(end - start);
}

LoadSchedule &
LoadSchedule::setName(std::string name)
{
    name_ = std::move(name);
    return *this;
}

} // namespace microscale::loadgen
