#include "loadgen/mix.hh"

#include <cmath>

#include "base/logging.hh"

namespace microscale::loadgen
{

using teastore::kNumOps;
using teastore::OpType;

BrowseMix::BrowseMix()
{
    // Rows: from-op; columns: to-op, in OpType order
    // (Home, Login, Category, Product, AddToCart, Checkout, Profile).
    transitions_ = {{
        /* Home      */ {{0.05, 0.25, 0.60, 0.00, 0.00, 0.00, 0.10}},
        /* Login     */ {{0.30, 0.00, 0.70, 0.00, 0.00, 0.00, 0.00}},
        /* Category  */ {{0.10, 0.00, 0.35, 0.55, 0.00, 0.00, 0.00}},
        /* Product   */ {{0.10, 0.00, 0.45, 0.15, 0.30, 0.00, 0.00}},
        /* AddToCart */ {{0.00, 0.00, 0.40, 0.20, 0.00, 0.40, 0.00}},
        /* Checkout  */ {{0.60, 0.00, 0.40, 0.00, 0.00, 0.00, 0.00}},
        /* Profile   */ {{0.40, 0.00, 0.60, 0.00, 0.00, 0.00, 0.00}},
    }};
    computeStationary();
}

BrowseMix::BrowseMix(
    std::array<std::array<double, kNumOps>, kNumOps> transitions)
    : transitions_(transitions)
{
    for (unsigned r = 0; r < kNumOps; ++r) {
        double sum = 0.0;
        for (unsigned c = 0; c < kNumOps; ++c) {
            if (transitions_[r][c] < 0.0)
                fatal("negative transition probability in mix row ", r);
            sum += transitions_[r][c];
        }
        if (std::abs(sum - 1.0) > 1e-6)
            fatal("mix row ", r, " sums to ", sum, ", expected 1");
    }
    computeStationary();
}

void
BrowseMix::computeStationary()
{
    // Power iteration; the chain is small, irreducible and aperiodic.
    std::array<double, kNumOps> v{};
    v.fill(1.0 / kNumOps);
    for (int iter = 0; iter < 200; ++iter) {
        std::array<double, kNumOps> n{};
        for (unsigned r = 0; r < kNumOps; ++r) {
            for (unsigned c = 0; c < kNumOps; ++c)
                n[c] += v[r] * transitions_[r][c];
        }
        v = n;
    }
    stationary_ = v;
}

OpType
BrowseMix::next(OpType current, Rng &rng) const
{
    const auto &row = transitions_[static_cast<unsigned>(current)];
    const std::vector<double> weights(row.begin(), row.end());
    return static_cast<OpType>(rng.weightedIndex(weights));
}

OpType
BrowseMix::sampleStationary(Rng &rng) const
{
    const std::vector<double> weights(stationary_.begin(),
                                      stationary_.end());
    return static_cast<OpType>(rng.weightedIndex(weights));
}

double
BrowseMix::stationaryWeight(OpType op) const
{
    return stationary_[static_cast<unsigned>(op)];
}

} // namespace microscale::loadgen
