/**
 * @file
 * Load drivers for the TeaStore application model.
 *
 * ClosedLoopDriver models N concurrent users (issue, wait, think,
 * repeat) - the saturation-style load the paper's throughput numbers
 * come from. OpenLoopDriver issues Poisson arrivals at a fixed rate -
 * used for throughput-latency curves. Both record latencies only
 * inside a configurable measurement window.
 */

#ifndef MICROSCALE_LOADGEN_DRIVER_HH
#define MICROSCALE_LOADGEN_DRIVER_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/random.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "loadgen/mix.hh"
#include "loadgen/schedule.hh"
#include "svc/resilience.hh"
#include "teastore/app.hh"

namespace microscale::chaos
{
class RequestLedger;
}

namespace microscale::loadgen
{

/** Latency/throughput results collected in the measurement window. */
class Measurement
{
  public:
    /** Define the window [start, end). */
    void setWindow(Tick start, Tick end);

    Tick windowStart() const { return start_; }
    Tick windowEnd() const { return end_; }

    /** Record one successful completed request. */
    void record(teastore::OpType op, Tick issued, Tick completed);

    /**
     * Record one response with its outcome. Latency histograms and
     * per-op counts cover OK responses only; failures contribute to
     * completed() and the status counters.
     */
    void record(teastore::OpType op, Tick issued, Tick completed,
                svc::Status status, bool degraded);

    /** Responses inside the window (any status). */
    std::uint64_t completed() const { return completed_; }

    /** Responses per second of window time (any status). */
    double throughputRps() const;

    /** OK responses per second of window time. */
    double goodputRps() const;

    /** Window responses that finished with `status`. */
    std::uint64_t statusCount(svc::Status status) const
    {
        return status_counts_[static_cast<unsigned>(status)];
    }

    /** Non-OK window responses. */
    std::uint64_t errorCount() const;

    /** OK window responses served from a degraded fallback. */
    std::uint64_t degradedCount() const { return degraded_; }

    /** End-to-end latency distribution over all ops, in ns. */
    const QuantileHistogram &latencyNs() const { return latency_; }

    /** Per-op latency distribution, in ns. */
    const QuantileHistogram &latencyNsFor(teastore::OpType op) const
    {
        return per_op_[static_cast<unsigned>(op)];
    }

    /** Per-op completion count. */
    std::uint64_t completedFor(teastore::OpType op) const
    {
        return per_op_count_[static_cast<unsigned>(op)];
    }

  private:
    Tick start_ = 0;
    Tick end_ = kTickNever;
    std::uint64_t completed_ = 0;
    QuantileHistogram latency_;
    std::array<QuantileHistogram, teastore::kNumOps> per_op_;
    std::array<std::uint64_t, teastore::kNumOps> per_op_count_{};
    std::array<std::uint64_t, svc::kNumStatuses> status_counts_{};
    std::uint64_t degraded_ = 0;
};

/**
 * Retreat wait after `consecutiveFailures` (≥ 1) straight non-OK
 * responses: base << min(failures - 1, 6), saturating at kTickNever/2
 * instead of overflowing Tick for huge bases. Values that fit are
 * returned exactly, so enabling the cap changed no in-range schedule.
 * Deterministic (no RNG draw) by design; see ClosedLoopParams.
 */
inline Tick
retreatBackoff(Tick base, unsigned consecutiveFailures)
{
    const unsigned shift = std::min(
        consecutiveFailures > 0 ? consecutiveFailures - 1 : 0u, 6u);
    // kTickNever is the "no deadline" sentinel; saturate safely below
    // it so a pathological base can never alias into it or wrap.
    constexpr Tick kCap = kTickNever / 2;
    if (base > (kCap >> shift))
        return kCap;
    return base << shift;
}

/** Closed-loop driver parameters. */
struct ClosedLoopParams
{
    unsigned users = 128;
    /** Mean exponential think time between a response and the next
     * request of the same user. */
    Tick meanThink = 250 * kMillisecond;
    /** Users ramp in uniformly over this interval after start(). */
    Tick rampTime = 100 * kMillisecond;
    /**
     * Backpressure retreat: after a non-OK response the user waits
     * retreatBackoff(retreatBase, consecutiveFailures) instead of a
     * think time, backing away from a server that is shedding load
     * (deterministic, no RNG draw). 0 (default) disables the retreat
     * and keeps the legacy think-time behavior bit-identical.
     */
    Tick retreatBase = 0;
    /**
     * Fluid population mode: at or above this user count the driver
     * replaces per-user state (one RNG stream, Markov position and
     * pending think event per user) with an aggregated population
     * model whose request stream has the same statistics — O(1) state
     * instead of O(users), which is what makes 100x bigger populations
     * simulable. 0 (default) disables fluid mode; per-user mode stays
     * byte-identical. See DESIGN.md "engine internals" for the
     * approximation boundary (stationary op mix, pooled ramp hazard,
     * first-level retreat).
     */
    unsigned fluidThreshold = 0;
    /**
     * Request-conservation ledger (chaos harness): every issued
     * request opens an entry, every response closes it with its
     * terminal status. Null (default) records nothing.
     */
    chaos::RequestLedger *ledger = nullptr;
};

/**
 * N simulated users walking the browse-profile Markov chain.
 */
class ClosedLoopDriver
{
  public:
    ClosedLoopDriver(teastore::App &app, BrowseMix mix,
                     ClosedLoopParams params, std::uint64_t seed);

    /** Begin all user sessions. */
    void start();

    /** Stop issuing new requests (in-flight ones still complete). */
    void stopIssuing() { stopped_ = true; }

    Measurement &measurement() { return measurement_; }
    const Measurement &measurement() const { return measurement_; }

    /** Requests issued (any time). */
    std::uint64_t issued() const { return issued_; }

  private:
    struct User
    {
        Rng rng;
        teastore::OpType current;
        /** Non-OK responses since the last OK (retreat backoff). */
        unsigned consecutiveFailures = 0;
        explicit User(Rng r, teastore::OpType op)
            : rng(std::move(r)), current(op)
        {
        }
    };

    /**
     * Aggregated population state for fluid mode. The three pools
     * (not-yet-ramped-in, thinking, in flight) replace per-user
     * objects; with exponential think times the pooled next-issue
     * process is itself exponential, so one pending event plus a
     * cancel-and-redraw on every pool change reproduces the per-user
     * arrival statistics exactly for the think component.
     */
    struct FluidState
    {
        /** Op sampling and category choices. */
        Rng rng;
        /** Dedicated stream drained in batches for inter-issue gaps. */
        Rng gapRng;
        /** Pre-drawn unit-mean exponential gaps. */
        SampleBatch gaps;
        unsigned notYetIn = 0;
        unsigned thinking = 0;
        unsigned retreating = 0;
        std::uint64_t inflight = 0;
        Tick rampEnd = 0;
        sim::EventHandle next;

        explicit FluidState(std::uint64_t seed)
            : rng(seed, "loadgen.fluid"),
              gapRng(seed, "loadgen.fluid.gaps"),
              gaps(gapRng, SampleBatch::Kind::Exponential, 1.0)
        {
        }
    };

    bool fluidMode() const { return fluid_ != nullptr; }

    void issue(std::size_t user_index);
    void onResponse(std::size_t user_index, teastore::OpType op,
                    Tick issued_at, svc::Status status, bool degraded);

    /** Pooled issue rates right now, in events per tick. */
    void fluidRates(Tick now, double &ramp, double &think) const;
    /** (Re)arm the single pending issue event from the pooled rates. */
    void scheduleNextFluid();
    /** One pooled issue event fired: pick a pool, issue, re-arm. */
    void fluidFire();
    void issueFluid();
    void onFluidResponse(teastore::OpType op, Tick issued_at,
                         svc::Status status, bool degraded);

    teastore::App &app_;
    BrowseMix mix_;
    ClosedLoopParams params_;
    std::vector<std::unique_ptr<User>> users_;
    std::unique_ptr<FluidState> fluid_;
    Measurement measurement_;
    std::uint64_t issued_ = 0;
    bool stopped_ = false;
    bool started_ = false;
};

/** Open-loop driver parameters. */
struct OpenLoopParams
{
    /** Mean arrival rate, requests per second. */
    double arrivalRps = 1000.0;
    /**
     * Time-varying rate; when non-empty it overrides arrivalRps and
     * arrivals follow a non-homogeneous Poisson process (thinning).
     * Empty keeps the legacy fixed-rate arrival stream bit-identical.
     */
    LoadSchedule schedule;
    /** When set, every arrival tick is appended (determinism tests). */
    std::vector<Tick> *arrivalLog = nullptr;
    /**
     * Draw fixed-rate inter-arrival gaps in batches from a dedicated
     * RNG stream instead of one-at-a-time from the shared driver
     * stream. Opt-in: the arrival times differ from the legacy stream
     * (a different but equally valid Poisson process), so the default
     * stays bit-identical.
     */
    bool batchedArrivals = false;
    /** Request-conservation ledger; see ClosedLoopParams::ledger. */
    chaos::RequestLedger *ledger = nullptr;
};

/**
 * Poisson arrivals sampled from the stationary mix, at a fixed rate or
 * along a LoadSchedule.
 */
class OpenLoopDriver
{
  public:
    OpenLoopDriver(teastore::App &app, BrowseMix mix,
                   OpenLoopParams params, std::uint64_t seed);

    /** Begin the arrival process. */
    void start();

    /** Stop generating new arrivals. */
    void stopIssuing() { stopped_ = true; }

    Measurement &measurement() { return measurement_; }
    const Measurement &measurement() const { return measurement_; }

    std::uint64_t issued() const { return issued_; }
    /** Requests issued but not yet answered. */
    std::uint64_t inFlight() const { return in_flight_; }

    /** The scheduled rate right now (fixed rate without a schedule). */
    double currentRate() const;

  private:
    void scheduleNext();
    void arrival();

    teastore::App &app_;
    BrowseMix mix_;
    OpenLoopParams params_;
    Rng rng_;
    /** Batched-arrival state (only with params_.batchedArrivals). */
    std::unique_ptr<Rng> gap_rng_;
    std::unique_ptr<SampleBatch> gaps_;
    Measurement measurement_;
    std::uint64_t issued_ = 0;
    std::uint64_t in_flight_ = 0;
    bool stopped_ = false;
    bool started_ = false;
};

} // namespace microscale::loadgen

#endif // MICROSCALE_LOADGEN_DRIVER_HH
