/**
 * @file
 * Machine: the immutable topology object every other module consults.
 *
 * Logical CPU numbering follows the Linux convention on SMT x86
 * servers: CPUs [0, cores) are the first hardware thread of each core,
 * CPUs [cores, 2*cores) are the SMT siblings, i.e. CPU c and CPU
 * c + numCores() share a core. Cores are numbered contiguously within
 * a CCX, CCXs within a node, nodes within a socket.
 */

#ifndef MICROSCALE_TOPO_MACHINE_HH
#define MICROSCALE_TOPO_MACHINE_HH

#include <vector>

#include "base/cpumask.hh"
#include "base/types.hh"
#include "topo/params.hh"

namespace microscale::topo
{

/**
 * Immutable machine topology with O(1) structural lookups.
 */
class Machine
{
  public:
    /** Build from validated parameters (validate() is called here). */
    explicit Machine(MachineParams params);

    const MachineParams &params() const { return params_; }
    const std::string &name() const { return params_.name; }

    unsigned numCpus() const { return params_.totalCpus(); }
    unsigned numCores() const { return params_.totalCores(); }
    unsigned numCcxs() const
    {
        return params_.sockets * params_.nodesPerSocket *
               params_.ccxsPerNode;
    }
    unsigned numNodes() const
    {
        return params_.sockets * params_.nodesPerSocket;
    }
    unsigned numSockets() const { return params_.sockets; }
    unsigned threadsPerCore() const { return params_.threadsPerCore; }
    unsigned coresPerCcx() const { return params_.coresPerCcx; }

    /** Physical core of a logical CPU. */
    CoreId coreOf(CpuId cpu) const;
    /** CCX (shared-L3 domain) of a logical CPU. */
    CcxId ccxOf(CpuId cpu) const;
    /** NUMA node of a logical CPU. */
    NodeId nodeOf(CpuId cpu) const;
    /** Socket of a logical CPU. */
    SocketId socketOf(CpuId cpu) const;

    /** SMT sibling CPU, or kInvalidCpu when SMT is off. */
    CpuId siblingOf(CpuId cpu) const;
    /** True when `cpu` is the first hardware thread of its core. */
    bool isPrimaryThread(CpuId cpu) const { return cpu < numCores(); }

    /** All logical CPUs of one core. */
    CpuMask cpusOfCore(CoreId core) const;
    /** All logical CPUs of one CCX. */
    CpuMask cpusOfCcx(CcxId ccx) const;
    /** All logical CPUs of one NUMA node. */
    CpuMask cpusOfNode(NodeId node) const;
    /** All logical CPUs of one socket. */
    CpuMask cpusOfSocket(SocketId socket) const;
    /** Every logical CPU in the machine. */
    CpuMask allCpus() const { return all_cpus_; }
    /** The first hardware thread of every core (the SMT-off view). */
    CpuMask primaryThreads() const { return primary_threads_; }

    /** NUMA node a CCX belongs to. */
    NodeId nodeOfCcx(CcxId ccx) const;
    /** Socket a NUMA node belongs to. */
    SocketId socketOfNode(NodeId node) const;
    /** CCX ids belonging to a node. */
    std::vector<CcxId> ccxsOfNode(NodeId node) const;

    /**
     * DRAM access latency in nanoseconds for a core on node `from`
     * touching memory homed on node `to`.
     */
    double memLatencyNs(NodeId from, NodeId to) const;

    /** One-line summary, e.g. "rome128: 1S x 4N x 4CCX x 4C x SMT2". */
    std::string describe() const;

  private:
    MachineParams params_;
    CpuMask all_cpus_;
    CpuMask primary_threads_;
    std::vector<double> mem_latency_; // numNodes x numNodes
};

} // namespace microscale::topo

#endif // MICROSCALE_TOPO_MACHINE_HH
