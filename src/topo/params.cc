#include "topo/params.hh"

#include <algorithm>

#include "base/cpumask.hh"
#include "base/logging.hh"

namespace microscale::topo
{

double
FreqCurve::freqGhz(unsigned active_cores, unsigned total_cores) const
{
    if (active_cores == 0)
        return boostGhz;
    // Quantize to governor buckets: round active count up.
    const unsigned step = std::max(1u, bucketCores);
    unsigned quant = ((active_cores + step - 1) / step) * step;
    quant = std::min(quant, total_cores);
    if (quant <= boostCores)
        return boostGhz;
    if (quant >= total_cores)
        return allCoreGhz;
    const double span = static_cast<double>(total_cores - boostCores);
    const double over = static_cast<double>(quant - boostCores);
    return boostGhz - (boostGhz - allCoreGhz) * (over / span);
}

unsigned
FreqCurve::bucketOf(unsigned active_cores) const
{
    const unsigned step = std::max(1u, bucketCores);
    return (active_cores + step - 1) / step;
}

void
MachineParams::validate() const
{
    if (sockets == 0 || nodesPerSocket == 0 || ccxsPerNode == 0 ||
        coresPerCcx == 0) {
        fatal("machine '", name, "': all topology counts must be >= 1");
    }
    if (threadsPerCore < 1 || threadsPerCore > 2)
        fatal("machine '", name, "': threadsPerCore must be 1 or 2");
    if (totalCpus() > kMaxCpus) {
        fatal("machine '", name, "': ", totalCpus(),
              " logical CPUs exceeds the kMaxCpus limit of ", kMaxCpus);
    }
    if (freq.boostGhz < freq.allCoreGhz)
        fatal("machine '", name, "': boost frequency below all-core");
    if (freq.allCoreGhz <= 0.0)
        fatal("machine '", name, "': non-positive frequency");
    if (mem.localLatencyNs <= 0.0)
        fatal("machine '", name, "': non-positive memory latency");
    if (mem.intraSocketFactor < 1.0 || mem.interSocketFactor < 1.0)
        fatal("machine '", name, "': NUMA factors must be >= 1");
}

} // namespace microscale::topo
