#include "topo/presets.hh"

#include "base/logging.hh"

namespace microscale::topo
{

MachineParams
rome128()
{
    MachineParams p;
    p.name = "rome128";
    p.sockets = 1;
    p.nodesPerSocket = 4;
    p.ccxsPerNode = 4;
    p.coresPerCcx = 4;
    p.threadsPerCore = 2;
    p.cache.l3BytesPerCcx = 16ull * 1024 * 1024;
    p.freq.boostGhz = 3.4;
    p.freq.allCoreGhz = 2.25;
    p.freq.boostCores = 8;
    p.freq.bucketCores = 8;
    p.mem.localLatencyNs = 104.0;
    p.mem.intraSocketFactor = 1.35;
    p.mem.interSocketFactor = 1.95;
    return p;
}

MachineParams
rome64smtOff()
{
    MachineParams p = rome128();
    p.name = "rome64-smt-off";
    p.threadsPerCore = 1;
    return p;
}

MachineParams
rome128x2()
{
    MachineParams p = rome128();
    p.name = "rome128x2";
    p.sockets = 2;
    return p;
}

MachineParams
milan128()
{
    MachineParams p = rome128();
    p.name = "milan128";
    p.ccxsPerNode = 2;
    p.coresPerCcx = 8;
    p.cache.l3BytesPerCcx = 32ull * 1024 * 1024;
    p.freq.boostGhz = 3.5;
    p.freq.allCoreGhz = 2.45;
    return p;
}

MachineParams
genoa192()
{
    MachineParams p;
    p.name = "genoa192";
    p.sockets = 1;
    p.nodesPerSocket = 4;
    p.ccxsPerNode = 3;
    p.coresPerCcx = 8;
    p.threadsPerCore = 2;
    p.cache.l3BytesPerCcx = 32ull * 1024 * 1024;
    p.freq.boostGhz = 3.7;
    p.freq.allCoreGhz = 2.4;
    p.freq.boostCores = 12;
    p.freq.bucketCores = 12;
    p.mem.localLatencyNs = 98.0;
    p.mem.intraSocketFactor = 1.3;
    p.mem.interSocketFactor = 1.9;
    return p;
}

MachineParams
server32()
{
    MachineParams p;
    p.name = "server32";
    p.sockets = 1;
    p.nodesPerSocket = 1;
    p.ccxsPerNode = 4;
    p.coresPerCcx = 4;
    p.threadsPerCore = 2;
    p.cache.l3BytesPerCcx = 16ull * 1024 * 1024;
    p.freq.boostGhz = 3.7;
    p.freq.allCoreGhz = 2.9;
    p.freq.boostCores = 4;
    p.freq.bucketCores = 4;
    p.mem.localLatencyNs = 96.0;
    return p;
}

MachineParams
small8()
{
    MachineParams p;
    p.name = "small8";
    p.sockets = 1;
    p.nodesPerSocket = 1;
    p.ccxsPerNode = 2;
    p.coresPerCcx = 2;
    p.threadsPerCore = 2;
    p.cache.l3BytesPerCcx = 8ull * 1024 * 1024;
    p.freq.boostGhz = 3.0;
    p.freq.allCoreGhz = 2.5;
    p.freq.boostCores = 2;
    p.freq.bucketCores = 2;
    p.mem.localLatencyNs = 90.0;
    return p;
}

MachineParams
presetByName(const std::string &name)
{
    if (name == "rome128")
        return rome128();
    if (name == "rome64-smt-off")
        return rome64smtOff();
    if (name == "rome128x2")
        return rome128x2();
    if (name == "milan128")
        return milan128();
    if (name == "genoa192")
        return genoa192();
    if (name == "server32")
        return server32();
    if (name == "small8")
        return small8();
    fatal("unknown machine preset '", name, "'");
}

std::vector<std::string>
presetNames()
{
    return {"rome128", "rome64-smt-off", "rome128x2", "milan128",
            "genoa192", "server32", "small8"};
}

} // namespace microscale::topo
