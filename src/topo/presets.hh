/**
 * @file
 * Named machine presets used across experiments, examples and tests.
 */

#ifndef MICROSCALE_TOPO_PRESETS_HH
#define MICROSCALE_TOPO_PRESETS_HH

#include <string>
#include <vector>

#include "topo/params.hh"

namespace microscale::topo
{

/**
 * The paper's server class: 1 socket, 64 cores / 128 SMT threads,
 * 16 CCXs with 16 MB L3 each, NPS4, 3.4 GHz boost / 2.25 GHz all-core.
 */
MachineParams rome128();

/** Same silicon with SMT disabled in firmware: 64 logical CPUs. */
MachineParams rome64smtOff();

/** A two-socket build of the rome128 package (256 logical CPUs). */
MachineParams rome128x2();

/**
 * A newer-generation part with unified 8-core CCDs: 64 cores / 128
 * threads in 8 CCXs of 8 cores sharing 32 MB L3 each (the "bigger L3
 * domain" design point the paper's CCX analysis anticipates).
 */
MachineParams milan128();

/** A 96-core / 192-thread part: 12 eight-core 32 MB-L3 CCXs, NPS4. */
MachineParams genoa192();

/**
 * A mid-range 32-thread server part: 1 socket, 16 cores, 4 CCXs, NPS1.
 */
MachineParams server32();

/** A small 8-CPU machine for fast tests: 2 CCXs x 2 cores x SMT2. */
MachineParams small8();

/** Look a preset up by name; fatal() on unknown names. */
MachineParams presetByName(const std::string &name);

/** Names accepted by presetByName. */
std::vector<std::string> presetNames();

} // namespace microscale::topo

#endif // MICROSCALE_TOPO_PRESETS_HH
