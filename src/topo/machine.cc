#include "topo/machine.hh"

#include <sstream>

#include "base/logging.hh"

namespace microscale::topo
{

Machine::Machine(MachineParams params) : params_(std::move(params))
{
    params_.validate();
    all_cpus_ = CpuMask::firstN(numCpus());
    primary_threads_ = CpuMask::firstN(numCores());

    const unsigned nodes = numNodes();
    mem_latency_.resize(static_cast<std::size_t>(nodes) * nodes);
    for (NodeId from = 0; from < nodes; ++from) {
        for (NodeId to = 0; to < nodes; ++to) {
            double lat = params_.mem.localLatencyNs;
            if (from != to) {
                lat *= socketOfNode(from) == socketOfNode(to)
                           ? params_.mem.intraSocketFactor
                           : params_.mem.interSocketFactor;
            }
            mem_latency_[static_cast<std::size_t>(from) * nodes + to] = lat;
        }
    }
}

CoreId
Machine::coreOf(CpuId cpu) const
{
    if (cpu >= numCpus())
        MS_PANIC("coreOf: cpu ", cpu, " out of range");
    return cpu % numCores();
}

CcxId
Machine::ccxOf(CpuId cpu) const
{
    return coreOf(cpu) / params_.coresPerCcx;
}

NodeId
Machine::nodeOf(CpuId cpu) const
{
    return ccxOf(cpu) / params_.ccxsPerNode;
}

SocketId
Machine::socketOf(CpuId cpu) const
{
    return nodeOf(cpu) / params_.nodesPerSocket;
}

CpuId
Machine::siblingOf(CpuId cpu) const
{
    if (params_.threadsPerCore < 2)
        return kInvalidCpu;
    const unsigned cores = numCores();
    return cpu < cores ? cpu + cores : cpu - cores;
}

CpuMask
Machine::cpusOfCore(CoreId core) const
{
    if (core >= numCores())
        MS_PANIC("cpusOfCore: core ", core, " out of range");
    CpuMask m = CpuMask::single(core);
    if (params_.threadsPerCore == 2)
        m.set(core + numCores());
    return m;
}

CpuMask
Machine::cpusOfCcx(CcxId ccx) const
{
    if (ccx >= numCcxs())
        MS_PANIC("cpusOfCcx: ccx ", ccx, " out of range");
    const CoreId first = ccx * params_.coresPerCcx;
    CpuMask m;
    for (CoreId c = first; c < first + params_.coresPerCcx; ++c)
        m |= cpusOfCore(c);
    return m;
}

CpuMask
Machine::cpusOfNode(NodeId node) const
{
    if (node >= numNodes())
        MS_PANIC("cpusOfNode: node ", node, " out of range");
    CpuMask m;
    for (CcxId x : ccxsOfNode(node))
        m |= cpusOfCcx(x);
    return m;
}

CpuMask
Machine::cpusOfSocket(SocketId socket) const
{
    if (socket >= numSockets())
        MS_PANIC("cpusOfSocket: socket ", socket, " out of range");
    CpuMask m;
    const NodeId first = socket * params_.nodesPerSocket;
    for (NodeId n = first; n < first + params_.nodesPerSocket; ++n)
        m |= cpusOfNode(n);
    return m;
}

NodeId
Machine::nodeOfCcx(CcxId ccx) const
{
    if (ccx >= numCcxs())
        MS_PANIC("nodeOfCcx: ccx ", ccx, " out of range");
    return ccx / params_.ccxsPerNode;
}

SocketId
Machine::socketOfNode(NodeId node) const
{
    if (node >= numNodes())
        MS_PANIC("socketOfNode: node ", node, " out of range");
    return node / params_.nodesPerSocket;
}

std::vector<CcxId>
Machine::ccxsOfNode(NodeId node) const
{
    if (node >= numNodes())
        MS_PANIC("ccxsOfNode: node ", node, " out of range");
    std::vector<CcxId> out;
    const CcxId first = node * params_.ccxsPerNode;
    for (CcxId x = first; x < first + params_.ccxsPerNode; ++x)
        out.push_back(x);
    return out;
}

double
Machine::memLatencyNs(NodeId from, NodeId to) const
{
    const unsigned nodes = numNodes();
    if (from >= nodes || to >= nodes)
        MS_PANIC("memLatencyNs: node out of range: ", from, ", ", to);
    return mem_latency_[static_cast<std::size_t>(from) * nodes + to];
}

std::string
Machine::describe() const
{
    std::ostringstream os;
    os << params_.name << ": " << params_.sockets << "S x "
       << params_.nodesPerSocket << "N x " << params_.ccxsPerNode
       << "CCX x " << params_.coresPerCcx << "C x SMT"
       << params_.threadsPerCore << " = " << numCpus() << " logical CPUs, "
       << params_.cache.l3BytesPerCcx / (1024 * 1024) << "MB L3/CCX, "
       << params_.freq.boostGhz << "-" << params_.freq.allCoreGhz
       << " GHz";
    return os.str();
}

} // namespace microscale::topo
