/**
 * @file
 * Parameter structures describing a server processor topology:
 * cache sizes and latencies, the socket frequency (boost) curve, and
 * memory latency as a function of NUMA distance.
 *
 * The default values approximate the class of machine the paper uses:
 * a 1-socket x86 server CPU with 64 cores / 128 SMT threads organized
 * as 16 four-core CCXs, each CCX sharing an L3 slice, and four NUMA
 * domains per socket (NPS4).
 */

#ifndef MICROSCALE_TOPO_PARAMS_HH
#define MICROSCALE_TOPO_PARAMS_HH

#include <cstdint>
#include <string>

namespace microscale::topo
{

/** Cache hierarchy parameters (per-core L1/L2, per-CCX shared L3). */
struct CacheParams
{
    std::uint64_t l1dBytes = 32 * 1024;
    std::uint64_t l1iBytes = 32 * 1024;
    std::uint64_t l2Bytes = 512 * 1024;
    /** Shared L3 slice per CCX. */
    std::uint64_t l3BytesPerCcx = 16ull * 1024 * 1024;

    /** L2 hit latency in core cycles (charged for icache misses). */
    double l2LatencyCycles = 12.0;
    /** L3 hit latency in core cycles. */
    double l3LatencyCycles = 39.0;
};

/**
 * Socket-level frequency behaviour: full boost while few cores are
 * active, declining linearly to the all-core frequency. Quantized into
 * buckets so the performance model only reacts to bucket crossings.
 */
struct FreqCurve
{
    /** Peak single/few-core boost frequency. */
    double boostGhz = 3.4;
    /** Sustained all-core frequency. */
    double allCoreGhz = 2.25;
    /** Active-core count up to which full boost is sustained. */
    unsigned boostCores = 8;
    /** Active-core quantization step for the governor. */
    unsigned bucketCores = 8;

    /**
     * Frequency in GHz given the number of active cores in the socket.
     * Frequency is evaluated at bucket granularity: the active count is
     * rounded up to the next bucket boundary before the curve is
     * applied, so small occupancy jitter does not change frequency.
     */
    double freqGhz(unsigned active_cores, unsigned total_cores) const;

    /** Governor bucket index for an active-core count. */
    unsigned bucketOf(unsigned active_cores) const;
};

/** Memory subsystem parameters. */
struct MemParams
{
    /** DRAM access latency from a core to its local NUMA node (ns). */
    double localLatencyNs = 104.0;
    /** Multiplier for a different NUMA node on the same socket. */
    double intraSocketFactor = 1.35;
    /** Multiplier for a node on another socket. */
    double interSocketFactor = 1.95;
};

/** Complete description of a machine, consumed by topo::Machine. */
struct MachineParams
{
    std::string name = "generic";
    unsigned sockets = 1;
    /** NUMA nodes per socket (NPS setting). */
    unsigned nodesPerSocket = 4;
    /** Shared-L3 core complexes per NUMA node. */
    unsigned ccxsPerNode = 4;
    unsigned coresPerCcx = 4;
    /** 1 = SMT off, 2 = SMT on. */
    unsigned threadsPerCore = 2;

    CacheParams cache;
    FreqCurve freq;
    MemParams mem;

    unsigned totalCores() const
    {
        return sockets * nodesPerSocket * ccxsPerNode * coresPerCcx;
    }

    unsigned totalCpus() const { return totalCores() * threadsPerCore; }

    /** Validate ranges; calls fatal() on impossible configurations. */
    void validate() const;
};

} // namespace microscale::topo

#endif // MICROSCALE_TOPO_PARAMS_HH
