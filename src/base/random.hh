/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component owns its own Rng stream, derived from a
 * master seed plus a stream label, so that adding or removing one
 * component never perturbs the draws seen by another. This keeps
 * experiments reproducible and A/B comparisons paired.
 */

#ifndef MICROSCALE_BASE_RANDOM_HH
#define MICROSCALE_BASE_RANDOM_HH

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace microscale
{

/**
 * A self-contained pseudo-random stream (xoshiro-seeded mt19937_64).
 */
class Rng
{
  public:
    /** Construct from a raw 64-bit seed. */
    explicit Rng(std::uint64_t seed);

    /**
     * Construct a named substream: the label is hashed into the seed so
     * distinct components get decorrelated streams from one master seed.
     */
    Rng(std::uint64_t master_seed, std::string_view stream_label);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Uniform real in [0, 1). */
    double uniform01() { return uniformReal(0.0, 1.0); }

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Normally distributed value. */
    double normal(double mean, double stddev);

    /**
     * Log-normal with the given mean and coefficient of variation of the
     * resulting distribution (not of the underlying normal).
     */
    double lognormal(double mean, double cv);

    /** Bernoulli draw. */
    bool chance(double probability);

    /**
     * Sample an index from a discrete distribution given by weights.
     * Weights need not be normalized; all must be >= 0 and their sum > 0.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Pick a uniformly random element index of a container of size n. */
    std::size_t index(std::size_t n);

    /**
     * Batched draws: fill `out[0..n)` with n consecutive draws from
     * this stream. Each fill consumes exactly the same engine state
     * as n scalar calls, so mixing scalar and batched consumption of
     * one stream stays reproducible. Batching amortizes the
     * distribution setup and keeps the engine state hot; the fluid
     * load mode and the speed harness drain thousands of inter-arrival
     * gaps per refill through these.
     */
    void fillUniform01(double *out, std::size_t n);

    /** Batched exponential draws with the given mean. */
    void fillExponential(double *out, std::size_t n, double mean);

    /**
     * Batched unit-mean lognormal draws with the given coefficient of
     * variation. Scale by m to get LogNormal draws of mean m: the
     * lognormal family is closed under scaling, so m * lognormalUnit(cv)
     * equals lognormal(m, cv) up to floating-point rounding.
     */
    void fillLognormalUnit(double *out, std::size_t n, double cv);

    /** Underlying engine, for std distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

/**
 * A refillable batch of pre-drawn samples from one Rng stream.
 *
 * Wraps the fill-N APIs with a cursor: next() hands out the buffered
 * draws in order and refills when exhausted. Draw order is identical
 * to calling the scalar API each time, so a SampleBatch can front any
 * single-distribution stream without perturbing determinism — but do
 * NOT front a stream whose other draw kinds interleave with these
 * draws, because prefetching would reorder them.
 */
class SampleBatch
{
  public:
    enum class Kind
    {
        Uniform01,
        Exponential,
        LognormalUnit,
    };

    /**
     * @param param the distribution parameter (exponential mean or
     *        lognormal cv; unused for Uniform01).
     */
    SampleBatch(Rng &rng, Kind kind, double param,
                std::size_t capacity = 1024);

    /** Next sample (refills transparently). */
    double next()
    {
        if (pos_ == buf_.size())
            refill();
        return buf_[pos_++];
    }

    /** Buffered samples not yet handed out. */
    std::size_t buffered() const { return buf_.size() - pos_; }

  private:
    void refill();

    Rng &rng_;
    Kind kind_;
    double param_;
    std::vector<double> buf_;
    std::size_t pos_;
};

/** Stable 64-bit FNV-1a hash of a string, for stream derivation. */
std::uint64_t hashLabel(std::string_view label);

} // namespace microscale

#endif // MICROSCALE_BASE_RANDOM_HH
