/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component owns its own Rng stream, derived from a
 * master seed plus a stream label, so that adding or removing one
 * component never perturbs the draws seen by another. This keeps
 * experiments reproducible and A/B comparisons paired.
 */

#ifndef MICROSCALE_BASE_RANDOM_HH
#define MICROSCALE_BASE_RANDOM_HH

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace microscale
{

/**
 * A self-contained pseudo-random stream (xoshiro-seeded mt19937_64).
 */
class Rng
{
  public:
    /** Construct from a raw 64-bit seed. */
    explicit Rng(std::uint64_t seed);

    /**
     * Construct a named substream: the label is hashed into the seed so
     * distinct components get decorrelated streams from one master seed.
     */
    Rng(std::uint64_t master_seed, std::string_view stream_label);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Uniform real in [0, 1). */
    double uniform01() { return uniformReal(0.0, 1.0); }

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Normally distributed value. */
    double normal(double mean, double stddev);

    /**
     * Log-normal with the given mean and coefficient of variation of the
     * resulting distribution (not of the underlying normal).
     */
    double lognormal(double mean, double cv);

    /** Bernoulli draw. */
    bool chance(double probability);

    /**
     * Sample an index from a discrete distribution given by weights.
     * Weights need not be normalized; all must be >= 0 and their sum > 0.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Pick a uniformly random element index of a container of size n. */
    std::size_t index(std::size_t n);

    /** Underlying engine, for std distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

/** Stable 64-bit FNV-1a hash of a string, for stream derivation. */
std::uint64_t hashLabel(std::string_view label);

} // namespace microscale

#endif // MICROSCALE_BASE_RANDOM_HH
