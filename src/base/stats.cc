#include "base/stats.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace microscale
{

void
SampleStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
SampleStats::merge(const SampleStats &o)
{
    if (o.count_ == 0)
        return;
    if (count_ == 0) {
        *this = o;
        return;
    }
    const double delta = o.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(o.count_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += o.m2_ + delta * delta * n1 * n2 / n;
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

void
SampleStats::reset()
{
    *this = SampleStats();
}

double
SampleStats::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
SampleStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

double
SampleStats::min() const
{
    return count_ ? min_ : 0.0;
}

double
SampleStats::max() const
{
    return count_ ? max_ : 0.0;
}

QuantileHistogram::QuantileHistogram()
{
    pending_.reserve(64);
}

unsigned
QuantileHistogram::bucketFor(double value)
{
    if (value < 1.0)
        return 0;
    int exp;
    double frac = std::frexp(value, &exp); // value = frac * 2^exp
    // frac in [0.5, 1): sub-bucket index from its fractional position.
    unsigned octave = static_cast<unsigned>(exp - 1);
    if (octave >= kOctaves)
        return kBuckets - 1;
    auto sub = static_cast<unsigned>((frac - 0.5) * 2.0 * kSubBuckets);
    sub = std::min(sub, kSubBuckets - 1);
    return 1 + octave * kSubBuckets + sub;
}

double
QuantileHistogram::bucketLow(unsigned b)
{
    if (b == 0)
        return 0.0;
    const unsigned idx = b - 1;
    const unsigned octave = idx / kSubBuckets;
    const unsigned sub = idx % kSubBuckets;
    const double base = std::ldexp(1.0, static_cast<int>(octave));
    return base * (1.0 + static_cast<double>(sub) / kSubBuckets);
}

double
QuantileHistogram::bucketHigh(unsigned b)
{
    if (b == 0)
        return 1.0;
    const unsigned idx = b - 1;
    const unsigned octave = idx / kSubBuckets;
    const unsigned sub = idx % kSubBuckets;
    const double base = std::ldexp(1.0, static_cast<int>(octave));
    return base * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
}

void
QuantileHistogram::foldPending() const
{
    if (pending_.empty())
        return;
    if (buckets_.empty())
        buckets_.assign(kBuckets, 0);
    // Insertion order is preserved, so folding commutes with every
    // observable: bucket increments are order-independent counts and
    // the float accumulators (sum/min/max) were updated at add time.
    for (double v : pending_)
        ++buckets_[bucketFor(v)];
    pending_.clear();
}

void
QuantileHistogram::add(double value)
{
    if (value < 0.0)
        value = 0.0;
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    pending_.push_back(value);
    if (pending_.size() >= kPendingCap)
        foldPending();
}

void
QuantileHistogram::merge(const QuantileHistogram &o)
{
    if (o.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = o.min_;
        max_ = o.max_;
    } else {
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }
    count_ += o.count_;
    sum_ += o.sum_;
    o.foldPending();
    if (!o.buckets_.empty()) {
        if (buckets_.empty())
            buckets_.assign(kBuckets, 0);
        for (unsigned i = 0; i < kBuckets; ++i)
            buckets_[i] += o.buckets_[i];
    }
}

void
QuantileHistogram::reset()
{
    buckets_.clear();
    pending_.clear();
    count_ = 0;
    sum_ = 0.0;
    min_ = max_ = 0.0;
}

double
QuantileHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
QuantileHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    foldPending();
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        const std::uint64_t n = buckets_[b];
        if (n == 0)
            continue;
        if (static_cast<double>(seen + n) >= target) {
            // Interpolate within the bucket, clamped to observed extrema.
            const double within =
                n ? (target - static_cast<double>(seen)) /
                        static_cast<double>(n)
                  : 0.0;
            const double lo = bucketLow(b);
            const double hi = bucketHigh(b);
            double v = lo + within * (hi - lo);
            return std::clamp(v, min_, max_);
        }
        seen += n;
    }
    return max_;
}

} // namespace microscale
