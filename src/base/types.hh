/**
 * @file
 * Fundamental scalar types and time units shared by every module.
 *
 * Simulated time is an integer tick count; one tick is one nanosecond.
 * Integer ticks keep event ordering exact and make the event queue
 * deterministic across platforms.
 */

#ifndef MICROSCALE_BASE_TYPES_HH
#define MICROSCALE_BASE_TYPES_HH

#include <cstdint>

namespace microscale
{

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Signed tick difference. */
using TickDelta = std::int64_t;

/** One nanosecond, the base resolution. */
constexpr Tick kNanosecond = 1;
/** One microsecond in ticks. */
constexpr Tick kMicrosecond = 1000 * kNanosecond;
/** One millisecond in ticks. */
constexpr Tick kMillisecond = 1000 * kMicrosecond;
/** One second in ticks. */
constexpr Tick kSecond = 1000 * kMillisecond;

/** A tick value that compares greater than any reachable time. */
constexpr Tick kTickNever = ~Tick(0);

/** Convert ticks to (floating point) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert ticks to (floating point) milliseconds. */
constexpr double
ticksToMillis(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/** Convert ticks to (floating point) microseconds. */
constexpr double
ticksToMicros(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/** Convert (floating point) seconds to ticks, rounding to nearest. */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kSecond) + 0.5);
}

/** Identifier of a hardware thread (logical CPU). */
using CpuId = std::uint32_t;
/** Identifier of a physical core. */
using CoreId = std::uint32_t;
/** Identifier of a core complex (CCX, shared-L3 cluster). */
using CcxId = std::uint32_t;
/** Identifier of a NUMA node. */
using NodeId = std::uint32_t;
/** Identifier of a socket. */
using SocketId = std::uint32_t;

/** Sentinel for "no CPU / unplaced". */
constexpr CpuId kInvalidCpu = ~CpuId(0);
/** Sentinel for "no NUMA node". */
constexpr NodeId kInvalidNode = ~NodeId(0);

} // namespace microscale

#endif // MICROSCALE_BASE_TYPES_HH
