#include "base/cpumask.hh"

#include <bit>
#include <sstream>

#include "base/logging.hh"

namespace microscale
{

namespace
{

void
checkCpu(CpuId cpu)
{
    if (cpu >= kMaxCpus)
        MS_PANIC("CpuMask: cpu id ", cpu, " out of range");
}

} // namespace

CpuMask
CpuMask::single(CpuId cpu)
{
    CpuMask m;
    m.set(cpu);
    return m;
}

CpuMask
CpuMask::range(CpuId first, CpuId last)
{
    CpuMask m;
    for (CpuId c = first; c <= last; ++c)
        m.set(c);
    return m;
}

CpuMask
CpuMask::firstN(CpuId count)
{
    if (count == 0)
        return CpuMask();
    return range(0, count - 1);
}

void
CpuMask::set(CpuId cpu)
{
    checkCpu(cpu);
    words_[cpu / 64] |= std::uint64_t(1) << (cpu % 64);
}

void
CpuMask::clear(CpuId cpu)
{
    checkCpu(cpu);
    words_[cpu / 64] &= ~(std::uint64_t(1) << (cpu % 64));
}

bool
CpuMask::test(CpuId cpu) const
{
    if (cpu >= kMaxCpus)
        return false;
    return (words_[cpu / 64] >> (cpu % 64)) & 1;
}

bool
CpuMask::empty() const
{
    for (auto w : words_) {
        if (w)
            return false;
    }
    return true;
}

unsigned
CpuMask::count() const
{
    unsigned n = 0;
    for (auto w : words_)
        n += std::popcount(w);
    return n;
}

CpuId
CpuMask::first() const
{
    for (unsigned i = 0; i < kWords; ++i) {
        if (words_[i])
            return i * 64 + std::countr_zero(words_[i]);
    }
    return kInvalidCpu;
}

CpuId
CpuMask::next(CpuId cpu) const
{
    if (cpu == kInvalidCpu || cpu + 1 >= kMaxCpus)
        return kInvalidCpu;
    CpuId start = cpu + 1;
    unsigned word = start / 64;
    std::uint64_t w = words_[word] >> (start % 64);
    if (w)
        return start + std::countr_zero(w);
    for (unsigned i = word + 1; i < kWords; ++i) {
        if (words_[i])
            return i * 64 + std::countr_zero(words_[i]);
    }
    return kInvalidCpu;
}

CpuMask
CpuMask::operator|(const CpuMask &o) const
{
    CpuMask r;
    for (unsigned i = 0; i < kWords; ++i)
        r.words_[i] = words_[i] | o.words_[i];
    return r;
}

CpuMask
CpuMask::operator&(const CpuMask &o) const
{
    CpuMask r;
    for (unsigned i = 0; i < kWords; ++i)
        r.words_[i] = words_[i] & o.words_[i];
    return r;
}

CpuMask
CpuMask::operator-(const CpuMask &o) const
{
    CpuMask r;
    for (unsigned i = 0; i < kWords; ++i)
        r.words_[i] = words_[i] & ~o.words_[i];
    return r;
}

CpuMask &
CpuMask::operator|=(const CpuMask &o)
{
    for (unsigned i = 0; i < kWords; ++i)
        words_[i] |= o.words_[i];
    return *this;
}

CpuMask &
CpuMask::operator&=(const CpuMask &o)
{
    for (unsigned i = 0; i < kWords; ++i)
        words_[i] &= o.words_[i];
    return *this;
}

bool
CpuMask::subsetOf(const CpuMask &o) const
{
    for (unsigned i = 0; i < kWords; ++i) {
        if (words_[i] & ~o.words_[i])
            return false;
    }
    return true;
}

bool
CpuMask::intersects(const CpuMask &o) const
{
    for (unsigned i = 0; i < kWords; ++i) {
        if (words_[i] & o.words_[i])
            return true;
    }
    return false;
}

std::string
CpuMask::toString() const
{
    std::ostringstream os;
    bool first_range = true;
    CpuId c = first();
    while (c != kInvalidCpu) {
        CpuId run_start = c;
        CpuId run_end = c;
        CpuId n = next(c);
        while (n == run_end + 1) {
            run_end = n;
            n = next(n);
        }
        if (!first_range)
            os << ",";
        first_range = false;
        if (run_start == run_end)
            os << run_start;
        else
            os << run_start << "-" << run_end;
        c = n;
    }
    if (first_range)
        os << "(empty)";
    return os.str();
}

} // namespace microscale
