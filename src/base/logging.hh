/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated: a bug in this library.
 *            Aborts (may dump core).
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, impossible parameters). Exits cleanly
 *            with status 1.
 * warn()   - something is questionable but the run continues.
 * inform() - plain status output.
 *
 * All functions accept printf-free, iostream-free variadic arguments
 * that are stringified with operator<<.
 */

#ifndef MICROSCALE_BASE_LOGGING_HH
#define MICROSCALE_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace microscale
{

/**
 * Tag every log line emitted by the current thread with "[label]"
 * until the scope ends (the previous tag is restored). Used by
 * core::SweepRunner so that interleaved output from parallel sweep
 * points stays attributable to its point.
 */
class LogScope
{
  public:
    explicit LogScope(std::string label);
    ~LogScope();
    LogScope(const LogScope &) = delete;
    LogScope &operator=(const LogScope &) = delete;

  private:
    std::string prev_;
};

/** The current thread's log tag; empty when no LogScope is active. */
const std::string &logTag();

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Quiet,   ///< Only fatal/panic output.
    Normal,  ///< warn() and inform() also print.
    Verbose, ///< verbose() also prints.
};

/** Set the global verbosity; returns the previous level. */
LogLevel setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail
{

/** Concatenate arguments with operator<< into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void verboseImpl(const std::string &msg);

} // namespace detail

/** Report a library bug and abort. */
#define MS_PANIC(...)                                                     \
    ::microscale::detail::panicImpl(__FILE__, __LINE__,                   \
        ::microscale::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious condition; execution continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report normal status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report chatty diagnostics (only at LogLevel::Verbose). */
template <typename... Args>
void
verbose(Args &&...args)
{
    if (logLevel() == LogLevel::Verbose)
        detail::verboseImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace microscale

#endif // MICROSCALE_BASE_LOGGING_HH
