/**
 * @file
 * Lightweight statistics containers used throughout the simulator.
 *
 * SampleStats accumulates streaming moments; QuantileHistogram is a
 * log-linear (HDR-style) histogram giving bounded-error percentiles
 * without retaining samples, suitable for millions of latency points.
 */

#ifndef MICROSCALE_BASE_STATS_HH
#define MICROSCALE_BASE_STATS_HH

#include <cstdint>
#include <vector>

namespace microscale
{

/**
 * Streaming mean / variance / extrema over double-valued samples
 * (Welford's algorithm; numerically stable).
 */
class SampleStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const SampleStats &o);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const;
    /** Sample variance (n-1 denominator); 0 with fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Log-linear histogram over non-negative values with relative bucket
 * error of about 1/kSubBuckets. Percentile queries interpolate inside
 * the matched bucket.
 *
 * Resolution floor: bucket 0 spans [0, 1), so values below 1.0 all
 * land there and are indistinguishable. Latencies are recorded in ns
 * (integral ticks), which keeps every real sample at or above the
 * floor; record in coarser units and sub-unit structure flattens.
 *
 * Ingestion is deferred: add() appends to a small flat buffer and the
 * bucket classification (frexp + random-access increments) happens in
 * batch when the buffer fills or a quantile is queried. Folding
 * preserves insertion order, so every observable — count, sum, mean,
 * extrema, quantiles — is bit-identical to immediate classification.
 * The bucket array itself is allocated on first fold, which keeps
 * never-queried histograms cheap.
 */
class QuantileHistogram
{
  public:
    QuantileHistogram();

    /** Record one non-negative value (negatives clamp to zero). */
    void add(double value);

    /** Merge another histogram into this one. */
    void merge(const QuantileHistogram &o);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Value at the given quantile, clamped to [min(), max()] so
     * in-bucket interpolation can never report a value outside the
     * observed range (bucket edges over- or undershoot at the tails).
     * @param q in [0, 1]; q=0.5 is the median.
     */
    double quantile(double q) const;

    /** Shorthand: quantile(0.50). */
    double p50() const { return quantile(0.50); }
    /** Shorthand: quantile(0.95). */
    double p95() const { return quantile(0.95); }
    /** Shorthand: quantile(0.99). */
    double p99() const { return quantile(0.99); }

  private:
    static constexpr unsigned kSubBucketBits = 5; // 32 sub-buckets/octave
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
    static constexpr unsigned kOctaves = 40; // covers ~1e12 range
    static constexpr unsigned kBuckets = kOctaves * kSubBuckets + 1;

    /** Pending samples kept before classification into buckets. */
    static constexpr std::size_t kPendingCap = 1024;

    static unsigned bucketFor(double value);
    static double bucketLow(unsigned b);
    static double bucketHigh(unsigned b);

    /** Classify buffered samples into buckets (allocating them). */
    void foldPending() const;

    /** Either empty (nothing folded yet) or exactly kBuckets long. */
    mutable std::vector<std::uint64_t> buckets_;
    /** Flat append buffer of samples awaiting classification. */
    mutable std::vector<double> pending_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace microscale

#endif // MICROSCALE_BASE_STATS_HH
