/**
 * @file
 * A small command-line flag parser for the tools and examples:
 * --name value / --name=value / --flag, with typed accessors,
 * defaults, and an auto-generated usage text.
 */

#ifndef MICROSCALE_BASE_ARGS_HH
#define MICROSCALE_BASE_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace microscale
{

/**
 * Declarative flag set. Declare options, parse argv, read values.
 */
class ArgParser
{
  public:
    explicit ArgParser(std::string program_description);

    /** Declare a string option. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);
    /** Declare an integer option. */
    void addInt(const std::string &name, std::int64_t def,
                const std::string &help);
    /** Declare a floating-point option. */
    void addDouble(const std::string &name, double def,
                   const std::string &help);
    /** Declare a boolean switch (false unless given). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv.
     * @return true on success; false (with a message on stderr) on
     *         missing values or bad numbers. A `--help` request prints
     *         usage and also returns false. An unknown option is a
     *         fatal() error listing the valid options: tools must not
     *         run with a mistyped flag silently ignored.
     */
    bool parse(int argc, const char *const *argv);

    std::string getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** Usage text assembled from the declarations. */
    std::string usage() const;

  private:
    enum class Kind
    {
        String,
        Int,
        Double,
        Flag,
    };

    struct Option
    {
        Kind kind;
        std::string def;
        std::string help;
        std::string value;
        bool set = false;
    };

    const Option &lookup(const std::string &name, Kind kind) const;

    std::string description_;
    std::string program_ = "prog";
    std::map<std::string, Option> options_;
    std::vector<std::string> order_;
};

} // namespace microscale

#endif // MICROSCALE_BASE_ARGS_HH
