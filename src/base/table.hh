/**
 * @file
 * TextTable: aligned, paper-style tabular output for the benchmark
 * harness, with optional CSV emission for plotting.
 */

#ifndef MICROSCALE_BASE_TABLE_HH
#define MICROSCALE_BASE_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace microscale
{

/**
 * Builds a table row by row and renders it either as an aligned text
 * table (for terminal output) or CSV (for plotting scripts).
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a pre-stringified row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Row builder collecting heterogenous cells. */
    class Row
    {
      public:
        explicit Row(TextTable &table) : table_(table) {}
        ~Row();
        Row(const Row &) = delete;
        Row &operator=(const Row &) = delete;

        Row &cell(const std::string &s);
        Row &cell(const char *s);
        /** Format a double with the given precision. */
        Row &cell(double v, int precision = 2);
        Row &cell(std::uint64_t v);
        Row &cell(int v);
        Row &cell(unsigned v);

      private:
        TextTable &table_;
        std::vector<std::string> cells_;
    };

    /** Start a new row; the row is committed when it goes out of scope. */
    Row row() { return Row(*this); }

    /** Number of committed data rows. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Column headers (for machine-readable re-emission). */
    const std::vector<std::string> &headers() const { return headers_; }

    /** Committed rows, pre-stringified. */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    /** Render as an aligned text table. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

    /** Render to stdout with a caption line above. */
    void printWithCaption(const std::string &caption) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision into a string. */
std::string formatDouble(double v, int precision);

/** Format a ratio as a signed percentage, e.g. "+22.1%". */
std::string formatPercent(double ratio, int precision = 1);

} // namespace microscale

#endif // MICROSCALE_BASE_TABLE_HH
