#include "base/args.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "base/logging.hh"

namespace microscale
{

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description))
{
}

void
ArgParser::addString(const std::string &name, const std::string &def,
                     const std::string &help)
{
    if (!options_.emplace(name, Option{Kind::String, def, help, def})
             .second) {
        MS_PANIC("duplicate option --", name);
    }
    order_.push_back(name);
}

void
ArgParser::addInt(const std::string &name, std::int64_t def,
                  const std::string &help)
{
    const std::string d = std::to_string(def);
    if (!options_.emplace(name, Option{Kind::Int, d, help, d}).second)
        MS_PANIC("duplicate option --", name);
    order_.push_back(name);
}

void
ArgParser::addDouble(const std::string &name, double def,
                     const std::string &help)
{
    std::ostringstream os;
    os << def;
    if (!options_
             .emplace(name, Option{Kind::Double, os.str(), help, os.str()})
             .second) {
        MS_PANIC("duplicate option --", name);
    }
    order_.push_back(name);
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    if (!options_.emplace(name, Option{Kind::Flag, "false", help, "false"})
             .second) {
        MS_PANIC("duplicate option --", name);
    }
    order_.push_back(name);
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            std::fprintf(stderr, "unexpected argument '%s'\n%s",
                         arg.c_str(), usage().c_str());
            return false;
        }
        arg = arg.substr(2);
        std::string value;
        bool has_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }
        auto it = options_.find(arg);
        if (it == options_.end()) {
            // A mistyped flag silently falling back to a default has
            // burned enough benchmark runs; make it unmissable.
            std::string valid = "--help";
            for (const std::string &name : order_)
                valid += ", --" + name;
            fatal("unknown option '--", arg, "' (valid options: ", valid,
                  ")");
        }
        Option &opt = it->second;
        if (opt.kind == Kind::Flag) {
            if (has_value) {
                std::fprintf(stderr, "--%s takes no value\n",
                             arg.c_str());
                return false;
            }
            opt.value = "true";
            opt.set = true;
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--%s needs a value\n", arg.c_str());
                return false;
            }
            value = argv[++i];
        }
        if (opt.kind == Kind::Int) {
            char *end = nullptr;
            (void)std::strtoll(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0') {
                std::fprintf(stderr, "--%s expects an integer, got '%s'\n",
                             arg.c_str(), value.c_str());
                return false;
            }
        } else if (opt.kind == Kind::Double) {
            char *end = nullptr;
            (void)std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0') {
                std::fprintf(stderr, "--%s expects a number, got '%s'\n",
                             arg.c_str(), value.c_str());
                return false;
            }
        }
        opt.value = value;
        opt.set = true;
    }
    return true;
}

const ArgParser::Option &
ArgParser::lookup(const std::string &name, Kind kind) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        MS_PANIC("undeclared option --", name);
    if (it->second.kind != kind)
        MS_PANIC("option --", name, " read with the wrong type");
    return it->second;
}

std::string
ArgParser::getString(const std::string &name) const
{
    return lookup(name, Kind::String).value;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    return std::strtoll(lookup(name, Kind::Int).value.c_str(), nullptr,
                        10);
}

double
ArgParser::getDouble(const std::string &name) const
{
    return std::strtod(lookup(name, Kind::Double).value.c_str(),
                       nullptr);
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return lookup(name, Kind::Flag).value == "true";
}

std::string
ArgParser::usage() const
{
    std::ostringstream os;
    os << description_ << "\n\nusage: " << program_ << " [options]\n";
    for (const std::string &name : order_) {
        const Option &opt = options_.at(name);
        os << "  --" << name;
        switch (opt.kind) {
          case Kind::String:
            os << " <string>";
            break;
          case Kind::Int:
            os << " <int>";
            break;
          case Kind::Double:
            os << " <number>";
            break;
          case Kind::Flag:
            break;
        }
        os << "  " << opt.help;
        if (opt.kind != Kind::Flag)
            os << " (default: " << opt.def << ")";
        os << "\n";
    }
    return os.str();
}

} // namespace microscale
