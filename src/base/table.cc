#include "base/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "base/logging.hh"

namespace microscale
{

std::string
formatDouble(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
formatPercent(double ratio, int precision)
{
    std::ostringstream os;
    os << (ratio >= 0 ? "+" : "") << std::fixed
       << std::setprecision(precision) << ratio * 100.0 << "%";
    return os.str();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        MS_PANIC("TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        MS_PANIC("TextTable row width ", cells.size(),
                 " != header width ", headers_.size());
    }
    rows_.push_back(std::move(cells));
}

TextTable::Row::~Row()
{
    table_.addRow(std::move(cells_));
}

TextTable::Row &
TextTable::Row::cell(const std::string &s)
{
    cells_.push_back(s);
    return *this;
}

TextTable::Row &
TextTable::Row::cell(const char *s)
{
    cells_.emplace_back(s);
    return *this;
}

TextTable::Row &
TextTable::Row::cell(double v, int precision)
{
    cells_.push_back(formatDouble(v, precision));
    return *this;
}

TextTable::Row &
TextTable::Row::cell(std::uint64_t v)
{
    cells_.push_back(std::to_string(v));
    return *this;
}

TextTable::Row &
TextTable::Row::cell(int v)
{
    cells_.push_back(std::to_string(v));
    return *this;
}

TextTable::Row &
TextTable::Row::cell(unsigned v)
{
    cells_.push_back(std::to_string(v));
    return *this;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << "  " << std::left << std::setw(static_cast<int>(widths[i]))
               << cells[i];
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ",";
            // Quote cells that contain commas.
            if (cells[i].find(',') != std::string::npos)
                os << '"' << cells[i] << '"';
            else
                os << cells[i];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

void
TextTable::printWithCaption(const std::string &caption) const
{
    std::cout << "\n" << caption << "\n";
    print(std::cout);
    std::cout.flush();
}

} // namespace microscale
