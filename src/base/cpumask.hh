/**
 * @file
 * CpuMask: an affinity set over logical CPUs, like Linux cpumask_t.
 *
 * Fixed capacity of kMaxCpus (512) covers any topology this library
 * builds (the paper's machine has 128 logical CPUs per socket).
 */

#ifndef MICROSCALE_BASE_CPUMASK_HH
#define MICROSCALE_BASE_CPUMASK_HH

#include <array>
#include <cstdint>
#include <string>

#include "base/types.hh"

namespace microscale
{

/** Upper bound on logical CPUs in any modeled machine. */
constexpr CpuId kMaxCpus = 512;

/**
 * A set of logical CPU ids with the usual set algebra, used for thread
 * affinity, scheduling domains, and placement policies.
 */
class CpuMask
{
  public:
    /** The empty mask. */
    CpuMask() : words_{} {}

    /** Mask containing the single CPU `cpu`. */
    static CpuMask single(CpuId cpu);

    /** Mask containing CPUs [first, last] inclusive. */
    static CpuMask range(CpuId first, CpuId last);

    /** Mask containing all CPUs in [0, count). */
    static CpuMask firstN(CpuId count);

    /** Add a CPU. */
    void set(CpuId cpu);
    /** Remove a CPU. */
    void clear(CpuId cpu);
    /** Membership test. */
    bool test(CpuId cpu) const;

    /** True when no CPU is set. */
    bool empty() const;
    /** Number of CPUs set. */
    unsigned count() const;

    /** Lowest CPU set, or kInvalidCpu when empty. */
    CpuId first() const;
    /** Lowest CPU set that is > `cpu`, or kInvalidCpu. */
    CpuId next(CpuId cpu) const;

    /** Set union. */
    CpuMask operator|(const CpuMask &o) const;
    /** Set intersection. */
    CpuMask operator&(const CpuMask &o) const;
    /** Set difference (this minus o). */
    CpuMask operator-(const CpuMask &o) const;
    CpuMask &operator|=(const CpuMask &o);
    CpuMask &operator&=(const CpuMask &o);

    bool operator==(const CpuMask &o) const { return words_ == o.words_; }
    bool operator!=(const CpuMask &o) const { return !(*this == o); }

    /** True when every CPU in this mask is also in `o`. */
    bool subsetOf(const CpuMask &o) const;
    /** True when the two masks share at least one CPU. */
    bool intersects(const CpuMask &o) const;

    /** Compact human-readable form, e.g. "0-3,8,12-15". */
    std::string toString() const;

    /** Iteration support: for (CpuId c : mask). */
    class Iterator
    {
      public:
        Iterator(const CpuMask *mask, CpuId cpu) : mask_(mask), cpu_(cpu) {}
        CpuId operator*() const { return cpu_; }
        Iterator &operator++()
        {
            cpu_ = mask_->next(cpu_);
            return *this;
        }
        bool operator!=(const Iterator &o) const { return cpu_ != o.cpu_; }

      private:
        const CpuMask *mask_;
        CpuId cpu_;
    };

    Iterator begin() const { return Iterator(this, first()); }
    Iterator end() const { return Iterator(this, kInvalidCpu); }

  private:
    static constexpr unsigned kWords = kMaxCpus / 64;
    std::array<std::uint64_t, kWords> words_;
};

} // namespace microscale

#endif // MICROSCALE_BASE_CPUMASK_HH
