#include "base/random.hh"

#include <cmath>

#include "base/logging.hh"

namespace microscale
{

std::uint64_t
hashLabel(std::string_view label)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : label) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace
{

// splitmix64: decorrelates nearby seeds before feeding mt19937_64.
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
mixSeed(std::uint64_t seed)
{
    std::uint64_t s = seed;
    return splitmix64(s);
}

} // namespace

Rng::Rng(std::uint64_t seed) : engine_(mixSeed(seed))
{
}

Rng::Rng(std::uint64_t master_seed, std::string_view stream_label)
    : engine_(mixSeed(master_seed ^ hashLabel(stream_label)))
{
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        MS_PANIC("uniformInt with lo > hi: ", lo, " > ", hi);
    std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::uniformReal(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        MS_PANIC("exponential with non-positive mean: ", mean);
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

double
Rng::lognormal(double mean, double cv)
{
    if (mean <= 0.0)
        MS_PANIC("lognormal with non-positive mean: ", mean);
    if (cv <= 0.0)
        return mean;
    // For LogNormal(mu, sigma): mean = exp(mu + sigma^2/2),
    // cv^2 = exp(sigma^2) - 1.
    const double sigma2 = std::log1p(cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    std::lognormal_distribution<double> dist(mu, std::sqrt(sigma2));
    return dist(engine_);
}

bool
Rng::chance(double probability)
{
    if (probability <= 0.0)
        return false;
    if (probability >= 1.0)
        return true;
    return uniform01() < probability;
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            MS_PANIC("negative weight in weightedIndex");
        total += w;
    }
    if (total <= 0.0)
        MS_PANIC("weightedIndex with zero total weight");
    double x = uniformReal(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (x < weights[i])
            return i;
        x -= weights[i];
    }
    return weights.size() - 1;
}

std::size_t
Rng::index(std::size_t n)
{
    if (n == 0)
        MS_PANIC("index() over empty range");
    return static_cast<std::size_t>(uniformInt(0, n - 1));
}

void
Rng::fillUniform01(double *out, std::size_t n)
{
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = dist(engine_);
}

void
Rng::fillExponential(double *out, std::size_t n, double mean)
{
    if (mean <= 0.0)
        MS_PANIC("exponential with non-positive mean: ", mean);
    std::exponential_distribution<double> dist(1.0 / mean);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = dist(engine_);
}

void
Rng::fillLognormalUnit(double *out, std::size_t n, double cv)
{
    if (cv <= 0.0) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = 1.0;
        return;
    }
    const double sigma2 = std::log1p(cv * cv);
    const double mu = -0.5 * sigma2;
    std::lognormal_distribution<double> dist(mu, std::sqrt(sigma2));
    for (std::size_t i = 0; i < n; ++i) {
        // Drop the cached Box-Muller second value so each draw
        // consumes the engine exactly like a fresh scalar call.
        dist.reset();
        out[i] = dist(engine_);
    }
}

SampleBatch::SampleBatch(Rng &rng, Kind kind, double param,
                         std::size_t capacity)
    : rng_(rng), kind_(kind), param_(param)
{
    if (capacity == 0)
        MS_PANIC("SampleBatch with zero capacity");
    buf_.resize(capacity);
    pos_ = buf_.size(); // force a refill on first next()
}

void
SampleBatch::refill()
{
    switch (kind_) {
    case Kind::Uniform01:
        rng_.fillUniform01(buf_.data(), buf_.size());
        break;
    case Kind::Exponential:
        rng_.fillExponential(buf_.data(), buf_.size(), param_);
        break;
    case Kind::LognormalUnit:
        rng_.fillLognormalUnit(buf_.data(), buf_.size(), param_);
        break;
    }
    pos_ = 0;
}

} // namespace microscale
