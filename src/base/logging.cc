#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace microscale
{

namespace
{
LogLevel gLevel = LogLevel::Normal;
} // namespace

LogLevel
setLogLevel(LogLevel level)
{
    LogLevel prev = gLevel;
    gLevel = level;
    return prev;
}

LogLevel
logLevel()
{
    return gLevel;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (gLevel != LogLevel::Quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (gLevel != LogLevel::Quiet)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
verboseImpl(const std::string &msg)
{
    std::fprintf(stdout, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace microscale
