#include "base/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace microscale
{

namespace
{

std::atomic<LogLevel> gLevel{LogLevel::Normal};

/**
 * One mutex serializes every emitted line so parallel sweep points
 * never interleave characters within a line. Each *Impl below formats
 * the whole line first and performs a single guarded write.
 */
std::mutex gWriteMutex;

thread_local std::string tTag;

void
writeLine(std::FILE *stream, const char *prefix, const std::string &msg)
{
    std::string line(prefix);
    if (!tTag.empty()) {
        line += '[';
        line += tTag;
        line += "] ";
    }
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(gWriteMutex);
    std::fwrite(line.data(), 1, line.size(), stream);
    std::fflush(stream);
}

} // namespace

LogScope::LogScope(std::string label) : prev_(std::move(tTag))
{
    tTag = std::move(label);
}

LogScope::~LogScope()
{
    tTag = std::move(prev_);
}

const std::string &
logTag()
{
    return tTag;
}

LogLevel
setLogLevel(LogLevel level)
{
    return gLevel.exchange(level);
}

LogLevel
logLevel()
{
    return gLevel.load();
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    writeLine(stderr, "panic: ",
              msg + " (" + file + ":" + std::to_string(line) + ")");
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    writeLine(stderr, "fatal: ", msg);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() != LogLevel::Quiet)
        writeLine(stderr, "warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() != LogLevel::Quiet)
        writeLine(stdout, "info: ", msg);
}

void
verboseImpl(const std::string &msg)
{
    writeLine(stdout, "debug: ", msg);
}

} // namespace detail

} // namespace microscale
