/**
 * @file
 * Tests for the socialnet application graph: graph shape, op-mix
 * determinism on its dedicated RNG stream, end-to-end completion of
 * every frontend op at full and truncated depth, and the runner's
 * fanout summary + exact trace attribution.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "apps/socialnet/runner.hh"
#include "net/network.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "svc/mesh.hh"
#include "topo/presets.hh"

namespace microscale::socialnet
{
namespace
{

/** World harness: mesh + app on a small machine. */
class SocialnetTest : public ::testing::Test
{
  protected:
    SocialnetTest()
        : machine_(topo::small8()),
          engine_(sim_, machine_),
          kernel_(sim_, machine_, engine_, os::SchedParams{}, 1),
          network_(sim_, net::NetParams{}, 1),
          mesh_(kernel_, network_, svc::RpcCostParams{}, 1)
    {
        kernel_.start();
    }

    App &
    makeApp(AppParams params = AppParams{})
    {
        app_ = std::make_unique<App>(mesh_, params, 1);
        return *app_;
    }

    sim::Simulation sim_;
    topo::Machine machine_;
    cpu::ExecEngine engine_;
    os::Kernel kernel_;
    net::Network network_;
    svc::Mesh mesh_;
    std::unique_ptr<App> app_;
};

TEST_F(SocialnetTest, FullGraphRegistersTwentyOneServices)
{
    App &app = makeApp();
    EXPECT_EQ(app.serviceCount(), 21u);
    EXPECT_GE(app.serviceCount(), 15u); // DeathStarBench-scale floor
    std::set<std::string> seen;
    for (const svc::Service *s : app.services())
        seen.insert(s->name());
    EXPECT_EQ(seen.size(), app.serviceCount()) << "duplicate names";
    EXPECT_TRUE(seen.count(names::kFrontend));
    EXPECT_TRUE(seen.count(names::kPostStorage));
    EXPECT_TRUE(seen.count(names::kTimelineDb));
}

TEST_F(SocialnetTest, OpMixIsDeterministicPerSeed)
{
    App &app = makeApp();
    Rng a(7, "socialnet.load");
    Rng b(7, "socialnet.load");
    Rng c(8, "socialnet.load");
    std::vector<OpType> sa, sb, sc;
    for (int i = 0; i < 200; ++i) {
        sa.push_back(app.sampleOp(a));
        sb.push_back(app.sampleOp(b));
        sc.push_back(app.sampleOp(c));
    }
    EXPECT_EQ(sa, sb);
    EXPECT_NE(sa, sc);
    // The mix covers every op type over a couple hundred draws.
    std::set<OpType> kinds(sa.begin(), sa.end());
    EXPECT_EQ(kinds.size(), static_cast<std::size_t>(kNumOps));
}

TEST_F(SocialnetTest, EveryOpCompletesAtFullDepth)
{
    App &app = makeApp();
    Rng rng(3, "socialnet.load");
    int pending = 0;
    for (OpType op : allOps()) {
        ++pending;
        mesh_.callExternalS(
            names::kFrontend, opName(op), app.sampleRequest(op, rng),
            [&pending, op](const svc::Payload &, svc::Status st) {
                EXPECT_EQ(st, svc::Status::Ok) << opName(op);
                --pending;
            });
    }
    sim_.run();
    EXPECT_EQ(pending, 0);
}

TEST_F(SocialnetTest, TruncatedDepthStillCompletesEveryOp)
{
    AppParams params;
    params.depth = 1; // frontend absorbs the whole graph
    App &app = makeApp(params);
    Rng rng(3, "socialnet.load");
    int ok = 0;
    for (OpType op : allOps()) {
        mesh_.callExternalS(
            names::kFrontend, opName(op), app.sampleRequest(op, rng),
            [&ok](const svc::Payload &, svc::Status st) {
                if (st == svc::Status::Ok)
                    ++ok;
            });
    }
    sim_.run();
    EXPECT_EQ(ok, static_cast<int>(kNumOps));
    // Depth 1 truncates at the frontend: downstream tiers never see
    // a request.
    EXPECT_EQ(mesh_.service(names::kPostStorage).requestsProcessed(),
              0u);
}

core::ExperimentConfig
runnerConfig()
{
    core::ExperimentConfig c;
    c.machine = topo::small8();
    c.openLoopRps = 150.0;
    c.warmup = 100 * kMillisecond;
    c.measure = 300 * kMillisecond;
    c.trace.enabled = true;
    c.trace.sampleRate = 1.0;
    return c;
}

TEST(SocialnetRunner, FillsFanoutBlockAndAttributionIsExact)
{
    RunOptions opts;
    opts.stragglerFactor = 8.0;
    opts.hedge = true;
    opts.hedgeDelay = 1200 * kMicrosecond;
    opts.hedgeBudget = 0.5;
    const core::RunResult r = runSocialnet(runnerConfig(), opts);

    EXPECT_GT(r.throughputRps, 0.0);
    ASSERT_TRUE(r.fanout.active);
    EXPECT_EQ(r.fanout.app, "socialnet");
    EXPECT_EQ(r.fanout.depth, 5u);
    EXPECT_EQ(r.fanout.services, 21u);
    EXPECT_TRUE(r.fanout.hedged);
    EXPECT_GT(r.fanout.firstAttempts, 0u);
    EXPECT_GT(r.fanout.p99Ms, 0.0);
    EXPECT_GE(r.fanout.amplification, 1.0);

    ASSERT_TRUE(r.trace.active);
    ASSERT_GT(r.trace.tracesAnalyzed, 0u);
    const double sum = r.trace.attribution.attributedNs();
    const double e2e = r.trace.attribution.e2eNs;
    ASSERT_GT(e2e, 0.0);
    EXPECT_LE(std::abs(sum - e2e), 0.01 * e2e)
        << "attribution must partition mean e2e within 1%";
}

TEST(SocialnetRunner, SameSeedRunsAreIdentical)
{
    RunOptions opts;
    opts.stragglerFactor = 8.0;
    opts.hedge = true;
    opts.hedgeDelay = 1200 * kMicrosecond;
    const core::RunResult a = runSocialnet(runnerConfig(), opts);
    const core::RunResult b = runSocialnet(runnerConfig(), opts);
    EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
    EXPECT_DOUBLE_EQ(a.throughputRps, b.throughputRps);
    EXPECT_DOUBLE_EQ(a.latency.p99Ms, b.latency.p99Ms);
    EXPECT_EQ(a.fanout.hedgesLaunched, b.fanout.hedgesLaunched);
    EXPECT_EQ(a.fanout.hedgeWins, b.fanout.hedgeWins);
}

} // namespace
} // namespace microscale::socialnet
