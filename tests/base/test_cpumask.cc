/**
 * @file
 * Tests for CpuMask, including a property test against std::set as a
 * reference implementation.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/cpumask.hh"
#include "base/random.hh"

namespace microscale
{
namespace
{

TEST(CpuMask, EmptyByDefault)
{
    CpuMask m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.count(), 0u);
    EXPECT_EQ(m.first(), kInvalidCpu);
}

TEST(CpuMask, SetTestClear)
{
    CpuMask m;
    m.set(5);
    EXPECT_TRUE(m.test(5));
    EXPECT_FALSE(m.test(4));
    EXPECT_EQ(m.count(), 1u);
    m.clear(5);
    EXPECT_TRUE(m.empty());
}

TEST(CpuMask, SingleAndRange)
{
    EXPECT_EQ(CpuMask::single(7).count(), 1u);
    EXPECT_TRUE(CpuMask::single(7).test(7));
    const CpuMask r = CpuMask::range(3, 9);
    EXPECT_EQ(r.count(), 7u);
    EXPECT_TRUE(r.test(3));
    EXPECT_TRUE(r.test(9));
    EXPECT_FALSE(r.test(2));
    EXPECT_FALSE(r.test(10));
}

TEST(CpuMask, FirstN)
{
    EXPECT_TRUE(CpuMask::firstN(0).empty());
    const CpuMask m = CpuMask::firstN(128);
    EXPECT_EQ(m.count(), 128u);
    EXPECT_TRUE(m.test(127));
    EXPECT_FALSE(m.test(128));
}

TEST(CpuMask, WordBoundaries)
{
    CpuMask m;
    for (CpuId c : {63u, 64u, 127u, 128u, 191u, 192u}) {
        m.set(c);
        EXPECT_TRUE(m.test(c));
    }
    EXPECT_EQ(m.count(), 6u);
    EXPECT_EQ(m.first(), 63u);
    EXPECT_EQ(m.next(63), 64u);
    EXPECT_EQ(m.next(64), 127u);
    EXPECT_EQ(m.next(192), kInvalidCpu);
}

TEST(CpuMask, Iteration)
{
    const CpuMask m = CpuMask::single(2) | CpuMask::single(70) |
                      CpuMask::single(200);
    std::vector<CpuId> seen;
    for (CpuId c : m)
        seen.push_back(c);
    EXPECT_EQ(seen, (std::vector<CpuId>{2, 70, 200}));
}

TEST(CpuMask, SetAlgebra)
{
    const CpuMask a = CpuMask::range(0, 9);
    const CpuMask b = CpuMask::range(5, 14);
    EXPECT_EQ((a | b).count(), 15u);
    EXPECT_EQ((a & b).count(), 5u);
    EXPECT_EQ((a - b).count(), 5u);
    EXPECT_TRUE((a - b).test(0));
    EXPECT_FALSE((a - b).test(5));
}

TEST(CpuMask, SubsetAndIntersects)
{
    const CpuMask a = CpuMask::range(0, 3);
    const CpuMask b = CpuMask::range(0, 7);
    EXPECT_TRUE(a.subsetOf(b));
    EXPECT_FALSE(b.subsetOf(a));
    EXPECT_TRUE(a.subsetOf(a));
    EXPECT_TRUE(a.intersects(b));
    EXPECT_FALSE(a.intersects(CpuMask::range(4, 7)));
    EXPECT_TRUE(CpuMask().subsetOf(a));
    EXPECT_FALSE(CpuMask().intersects(a));
}

TEST(CpuMask, Equality)
{
    EXPECT_EQ(CpuMask::range(1, 3),
              CpuMask::single(1) | CpuMask::single(2) | CpuMask::single(3));
    EXPECT_NE(CpuMask::range(1, 3), CpuMask::range(1, 4));
}

TEST(CpuMask, ToString)
{
    EXPECT_EQ(CpuMask().toString(), "(empty)");
    EXPECT_EQ(CpuMask::single(4).toString(), "4");
    EXPECT_EQ(CpuMask::range(0, 3).toString(), "0-3");
    EXPECT_EQ((CpuMask::range(0, 3) | CpuMask::single(8) |
               CpuMask::range(12, 15))
                  .toString(),
              "0-3,8,12-15");
}

TEST(CpuMask, TestOutOfRangeIsFalse)
{
    CpuMask m;
    EXPECT_FALSE(m.test(kMaxCpus));
    EXPECT_FALSE(m.test(kInvalidCpu));
}

/** Property test: random operation sequences match std::set. */
class CpuMaskProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CpuMaskProperty, MatchesReferenceSet)
{
    Rng rng(GetParam());
    CpuMask mask;
    std::set<CpuId> ref;
    for (int step = 0; step < 2000; ++step) {
        const CpuId cpu =
            static_cast<CpuId>(rng.uniformInt(0, kMaxCpus - 1));
        switch (rng.uniformInt(0, 2)) {
          case 0:
            mask.set(cpu);
            ref.insert(cpu);
            break;
          case 1:
            mask.clear(cpu);
            ref.erase(cpu);
            break;
          default:
            EXPECT_EQ(mask.test(cpu), ref.count(cpu) != 0);
            break;
        }
    }
    EXPECT_EQ(mask.count(), ref.size());
    std::vector<CpuId> from_mask;
    for (CpuId c : mask)
        from_mask.push_back(c);
    std::vector<CpuId> from_ref(ref.begin(), ref.end());
    EXPECT_EQ(from_mask, from_ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuMaskProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace microscale
