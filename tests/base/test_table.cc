/**
 * @file
 * Tests for the TextTable report writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/table.hh"

namespace microscale
{
namespace
{

TEST(Table, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(3.0, 0), "3");
    EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(Table, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.221), "+22.1%");
    EXPECT_EQ(formatPercent(-0.18), "-18.0%");
    EXPECT_EQ(formatPercent(0.0), "+0.0%");
}

TEST(Table, RowBuilderAndAlignment)
{
    TextTable t({"name", "value"});
    t.row().cell("alpha").cell(1.5, 1);
    t.row().cell("b").cell(std::uint64_t(12345));
    EXPECT_EQ(t.rowCount(), 2u);

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("12345"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    // Header separator line exists.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, Csv)
{
    TextTable t({"a", "b"});
    t.row().cell("x,y").cell(1);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"x,y\",1\n");
}

TEST(TableDeathTest, RowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(TableDeathTest, EmptyHeaderPanics)
{
    EXPECT_DEATH(TextTable(std::vector<std::string>{}), "at least one");
}

TEST(Table, IntCellTypes)
{
    TextTable t({"i", "u", "d"});
    t.row().cell(-3).cell(7u).cell(2.25, 2);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "i,u,d\n-3,7,2.25\n");
}

} // namespace
} // namespace microscale
