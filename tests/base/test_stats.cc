/**
 * @file
 * Tests for SampleStats and QuantileHistogram, including property
 * tests comparing histogram quantiles against exact sorted-sample
 * quantiles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/random.hh"
#include "base/stats.hh"

namespace microscale
{
namespace
{

TEST(SampleStats, EmptyIsZero)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SampleStats, BasicMoments)
{
    SampleStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SampleStats, SingleSampleVarianceZero)
{
    SampleStats s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(SampleStats, MergeMatchesCombined)
{
    Rng rng(11);
    SampleStats a, b, all;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal(10.0, 3.0);
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleStats, MergeWithEmpty)
{
    SampleStats a, b;
    a.add(1.0);
    a.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(SampleStats, Reset)
{
    SampleStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(QuantileHistogram, EmptyIsZero)
{
    QuantileHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(QuantileHistogram, SingleValue)
{
    QuantileHistogram h;
    h.add(1234.5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 1234.5);
    EXPECT_DOUBLE_EQ(h.max(), 1234.5);
    EXPECT_DOUBLE_EQ(h.p50(), 1234.5); // clamped to extrema
}

TEST(QuantileHistogram, NegativeClampsToZero)
{
    QuantileHistogram h;
    h.add(-5.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(QuantileHistogram, MeanExact)
{
    QuantileHistogram h;
    for (double v : {10.0, 20.0, 30.0})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(QuantileHistogram, QuantilesOrdered)
{
    QuantileHistogram h;
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        h.add(rng.lognormal(1e6, 0.8));
    EXPECT_LE(h.quantile(0.1), h.p50());
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
    EXPECT_LE(h.p99(), h.max());
    EXPECT_GE(h.quantile(0.0), h.min());
}

TEST(QuantileHistogram, MergeAddsCounts)
{
    QuantileHistogram a, b;
    for (int i = 0; i < 100; ++i) {
        a.add(100.0);
        b.add(200.0);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_DOUBLE_EQ(a.min(), 100.0);
    EXPECT_DOUBLE_EQ(a.max(), 200.0);
    EXPECT_NEAR(a.mean(), 150.0, 1e-9);
}

TEST(QuantileHistogram, Reset)
{
    QuantileHistogram h;
    h.add(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

/**
 * Property: histogram quantiles stay within the log-linear bucket
 * error (~3%) of exact sample quantiles, across distributions.
 */
class HistogramAccuracy
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(HistogramAccuracy, CloseToExactQuantiles)
{
    const auto [seed, cv] = GetParam();
    Rng rng(seed);
    QuantileHistogram h;
    std::vector<double> samples;
    for (int i = 0; i < 50000; ++i) {
        const double v = rng.lognormal(5e6, cv);
        h.add(v);
        samples.push_back(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
        const double exact =
            samples[static_cast<std::size_t>(q * (samples.size() - 1))];
        EXPECT_NEAR(h.quantile(q) / exact, 1.0, 0.05)
            << "q=" << q << " cv=" << cv;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, HistogramAccuracy,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.2, 0.8, 2.0)));

/**
 * Property: quantile() is monotone in q and always inside the
 * observed [min, max] range - in-bucket interpolation at the tails
 * must never extrapolate past a recorded sample.
 */
TEST(QuantileHistogram, QuantilesMonotoneAndBounded)
{
    for (int seed : {7, 21, 35}) {
        Rng rng(seed);
        QuantileHistogram h;
        for (int i = 0; i < 20000; ++i)
            h.add(rng.lognormal(3e6, 1.5));
        double prev = h.quantile(0.0);
        for (double q = 0.0; q <= 1.0; q += 0.01) {
            const double v = h.quantile(q);
            EXPECT_GE(v, prev) << "q=" << q << " seed=" << seed;
            EXPECT_GE(v, h.min()) << "q=" << q << " seed=" << seed;
            EXPECT_LE(v, h.max()) << "q=" << q << " seed=" << seed;
            prev = v;
        }
        EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
        EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
    }
}

/** The extremes clamp even with a single sample per bucket edge. */
TEST(QuantileHistogram, QuantileClampsSparseSamples)
{
    QuantileHistogram h;
    h.add(1000.0);
    h.add(1001.0);
    for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
        EXPECT_GE(h.quantile(q), 1000.0) << "q=" << q;
        EXPECT_LE(h.quantile(q), 1001.0) << "q=" << q;
    }
}

} // namespace
} // namespace microscale
