/**
 * @file
 * Tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/args.hh"

namespace microscale
{
namespace
{

ArgParser
makeParser()
{
    ArgParser p("test program");
    p.addString("name", "default-name", "a string");
    p.addInt("count", 7, "an integer");
    p.addDouble("ratio", 0.5, "a number");
    p.addFlag("verbose", "a switch");
    return p;
}

bool
parse(ArgParser &p, std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prog");
    return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, DefaultsWhenNothingGiven)
{
    ArgParser p = makeParser();
    EXPECT_TRUE(parse(p, {}));
    EXPECT_EQ(p.getString("name"), "default-name");
    EXPECT_EQ(p.getInt("count"), 7);
    EXPECT_DOUBLE_EQ(p.getDouble("ratio"), 0.5);
    EXPECT_FALSE(p.getFlag("verbose"));
}

TEST(Args, SpaceSeparatedValues)
{
    ArgParser p = makeParser();
    EXPECT_TRUE(parse(p, {"--name", "abc", "--count", "42", "--ratio",
                          "1.25", "--verbose"}));
    EXPECT_EQ(p.getString("name"), "abc");
    EXPECT_EQ(p.getInt("count"), 42);
    EXPECT_DOUBLE_EQ(p.getDouble("ratio"), 1.25);
    EXPECT_TRUE(p.getFlag("verbose"));
}

TEST(Args, EqualsSyntax)
{
    ArgParser p = makeParser();
    EXPECT_TRUE(parse(p, {"--name=xyz", "--count=-3"}));
    EXPECT_EQ(p.getString("name"), "xyz");
    EXPECT_EQ(p.getInt("count"), -3);
}

TEST(Args, UnknownOptionIsFatal)
{
    // An unknown option must abort the process (fatal), not fall back
    // to defaults — and the message must list every valid option.
    ArgParser p = makeParser();
    EXPECT_EXIT(parse(p, {"--bogus", "1"}),
                testing::ExitedWithCode(1),
                "unknown option '--bogus'.*--name.*--count.*--ratio.*"
                "--verbose");
}

TEST(Args, MissingValueFails)
{
    ArgParser p = makeParser();
    EXPECT_FALSE(parse(p, {"--count"}));
}

TEST(Args, BadIntegerFails)
{
    ArgParser p = makeParser();
    EXPECT_FALSE(parse(p, {"--count", "seven"}));
    EXPECT_FALSE(parse(p, {"--count", "3x"}));
}

TEST(Args, BadDoubleFails)
{
    ArgParser p = makeParser();
    EXPECT_FALSE(parse(p, {"--ratio", "abc"}));
}

TEST(Args, FlagWithValueFails)
{
    ArgParser p = makeParser();
    EXPECT_FALSE(parse(p, {"--verbose=yes"}));
}

TEST(Args, PositionalArgumentFails)
{
    ArgParser p = makeParser();
    EXPECT_FALSE(parse(p, {"stray"}));
}

TEST(Args, HelpReturnsFalse)
{
    ArgParser p = makeParser();
    EXPECT_FALSE(parse(p, {"--help"}));
}

TEST(Args, UsageMentionsEveryOption)
{
    ArgParser p = makeParser();
    const std::string u = p.usage();
    for (const char *s : {"--name", "--count", "--ratio", "--verbose",
                          "default-name", "test program"}) {
        EXPECT_NE(u.find(s), std::string::npos) << s;
    }
}

TEST(Args, MsimEngineFlagsParse)
{
    // The msim engine flags: --fluid-threshold takes a user count,
    // --report-speed is a plain switch, and both must show up in the
    // help text alongside their defaults.
    ArgParser p("msim");
    p.addInt("fluid-threshold", 0,
             "aggregate users into the fluid model at this count");
    p.addFlag("report-speed", "print engine speed after the run");
    EXPECT_TRUE(
        parse(p, {"--fluid-threshold", "50000", "--report-speed"}));
    EXPECT_EQ(p.getInt("fluid-threshold"), 50000);
    EXPECT_TRUE(p.getFlag("report-speed"));

    ArgParser q("msim");
    q.addInt("fluid-threshold", 0, "h");
    q.addFlag("report-speed", "h");
    EXPECT_TRUE(parse(q, {}));
    EXPECT_EQ(q.getInt("fluid-threshold"), 0);
    EXPECT_FALSE(q.getFlag("report-speed"));
    for (const char *s : {"--fluid-threshold", "--report-speed"})
        EXPECT_NE(q.usage().find(s), std::string::npos) << s;
}

TEST(ArgsDeathTest, WrongTypeAccessPanics)
{
    ArgParser p = makeParser();
    parse(p, {});
    EXPECT_DEATH((void)p.getInt("name"), "wrong type");
    EXPECT_DEATH((void)p.getString("missing"), "undeclared");
}

TEST(ArgsDeathTest, DuplicateDeclarationPanics)
{
    ArgParser p("x");
    p.addInt("a", 1, "h");
    EXPECT_DEATH(p.addFlag("a", "h"), "duplicate");
}

} // namespace
} // namespace microscale
