/**
 * @file
 * Tests for base/random: determinism, stream independence and
 * distribution sanity.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/random.hh"
#include "base/stats.hh"

namespace microscale
{
namespace
{

TEST(Random, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Random, DifferentSeedsDiffer)
{
    Rng a(42);
    Rng b(43);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000))
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Random, NamedStreamsAreIndependent)
{
    Rng a(42, "stream-a");
    Rng b(42, "stream-b");
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000))
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Random, SameLabelSameStream)
{
    Rng a(42, "stream");
    Rng b(42, "stream");
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(a.uniformInt(0, 1u << 30), b.uniformInt(0, 1u << 30));
}

TEST(Random, UniformIntBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Random, UniformIntDegenerate)
{
    Rng rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5u);
}

TEST(Random, UniformRealBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniformReal(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Random, ExponentialMean)
{
    Rng rng(7);
    SampleStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.exponential(5.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.1);
    EXPECT_GE(s.min(), 0.0);
}

TEST(Random, LognormalMeanAndCv)
{
    Rng rng(7);
    SampleStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.lognormal(10.0, 0.3));
    EXPECT_NEAR(s.mean(), 10.0, 0.15);
    EXPECT_NEAR(s.stddev() / s.mean(), 0.3, 0.02);
}

TEST(Random, LognormalZeroCvIsDeterministic)
{
    Rng rng(7);
    EXPECT_DOUBLE_EQ(rng.lognormal(8.0, 0.0), 8.0);
}

TEST(Random, ChanceExtremes)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Random, ChanceFrequency)
{
    Rng rng(7);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Random, WeightedIndexRespectsWeights)
{
    Rng rng(7);
    std::vector<double> w = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[rng.weightedIndex(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[0] / 100000.0, 0.25, 0.01);
    EXPECT_NEAR(counts[2] / 100000.0, 0.75, 0.01);
}

TEST(Random, WeightedIndexSingleElement)
{
    Rng rng(7);
    EXPECT_EQ(rng.weightedIndex({2.5}), 0u);
}

TEST(Random, IndexCoversRange)
{
    Rng rng(7);
    std::set<std::size_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.index(4));
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_EQ(*seen.rbegin(), 3u);
}

TEST(Random, HashLabelStable)
{
    EXPECT_EQ(hashLabel("abc"), hashLabel("abc"));
    EXPECT_NE(hashLabel("abc"), hashLabel("abd"));
    EXPECT_NE(hashLabel(""), hashLabel("a"));
}

TEST(Random, FillExponentialMatchesScalarSequence)
{
    // A batched fill must consume the engine exactly like n scalar
    // draws, so batched and scalar consumers of one stream agree.
    Rng a(42, "batch");
    Rng b(42, "batch");
    double batch[64];
    a.fillExponential(batch, 64, 3.0);
    for (double v : batch)
        EXPECT_DOUBLE_EQ(v, b.exponential(3.0));
    // Engine states stay in lockstep after the fill.
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Random, FillUniform01MatchesScalarSequence)
{
    Rng a(7, "u");
    Rng b(7, "u");
    double batch[16];
    a.fillUniform01(batch, 16);
    for (double v : batch) {
        EXPECT_DOUBLE_EQ(v, b.uniform01());
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, FillLognormalUnitScalesToLognormal)
{
    // lognormal(mean, cv) == mean * lognormalUnit(cv) up to rounding:
    // the family is closed under scaling, and the unit draw differs
    // only by the log(mean) shift inside the exp (a few ULPs).
    Rng a(9, "ln");
    Rng b(9, "ln");
    double unit[32];
    a.fillLognormalUnit(unit, 32, 0.5);
    for (double v : unit) {
        const double want = b.lognormal(2.5, 0.5);
        EXPECT_NEAR(2.5 * v, want, 1e-12 * want);
    }
}

TEST(Random, FillLognormalUnitZeroCvIsDegenerate)
{
    Rng a(9, "ln0");
    double unit[4];
    a.fillLognormalUnit(unit, 4, 0.0);
    for (double v : unit)
        EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Random, SampleBatchRefillsTransparently)
{
    Rng a(13, "sb");
    Rng b(13, "sb");
    SampleBatch batch(a, SampleBatch::Kind::Exponential, 2.0,
                      /*capacity=*/8);
    // Drain past several refill boundaries; order must match scalar.
    for (int i = 0; i < 30; ++i)
        EXPECT_DOUBLE_EQ(batch.next(), b.exponential(2.0));
    EXPECT_GT(batch.buffered(), 0u);
}

} // namespace
} // namespace microscale
