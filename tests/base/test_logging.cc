/**
 * @file
 * Tests for the logging level machinery (output routing is exercised
 * implicitly everywhere; here we verify level switching and death on
 * panic).
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/logging.hh"

namespace microscale
{
namespace
{

TEST(Logging, SetLevelReturnsPrevious)
{
    const LogLevel prev = setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    const LogLevel quiet = setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(quiet, LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(prev);
}

TEST(Logging, ConcatFormatsMixedArgs)
{
    EXPECT_EQ(detail::concat("a=", 1, " b=", 2.5), "a=1 b=2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH({ MS_PANIC("boom ", 42); }, "boom 42");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT({ fatal("bad config ", 7); },
                ::testing::ExitedWithCode(1), "bad config 7");
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    const LogLevel prev = setLogLevel(LogLevel::Quiet);
    warn("suppressed warning");
    inform("suppressed info");
    verbose("suppressed debug");
    setLogLevel(prev);
}

TEST(Logging, LogScopeSetsAndRestoresTag)
{
    EXPECT_EQ(logTag(), "");
    {
        LogScope outer("sweep-point");
        EXPECT_EQ(logTag(), "sweep-point");
        {
            LogScope inner("nested");
            EXPECT_EQ(logTag(), "nested");
        }
        EXPECT_EQ(logTag(), "sweep-point");
    }
    EXPECT_EQ(logTag(), "");
}

TEST(Logging, LogTagIsPerThread)
{
    LogScope scope("main-thread");
    std::vector<std::string> seen(4);
    std::vector<std::thread> pool;
    for (int i = 0; i < 4; ++i) {
        pool.emplace_back([i, &seen]() {
            LogScope scope("worker-" + std::to_string(i));
            seen[i] = logTag();
        });
    }
    for (std::thread &t : pool)
        t.join();
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(seen[i], "worker-" + std::to_string(i));
    EXPECT_EQ(logTag(), "main-thread");
}

TEST(Logging, ConcurrentLoggingIsSafe)
{
    // Hammer the logger from several tagged threads while another
    // flips the level. The atomic level plus the single guarded write
    // per line must keep this free of races and crashes.
    const LogLevel prev = setLogLevel(LogLevel::Quiet);
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([t]() {
            LogScope scope("w" + std::to_string(t));
            for (int i = 0; i < 200; ++i)
                inform("tick ", i);
        });
    }
    pool.emplace_back([]() {
        for (int i = 0; i < 100; ++i) {
            setLogLevel(LogLevel::Quiet);
            (void)logLevel();
        }
    });
    for (std::thread &t : pool)
        t.join();
    setLogLevel(prev);
}

} // namespace
} // namespace microscale
