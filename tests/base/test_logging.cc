/**
 * @file
 * Tests for the logging level machinery (output routing is exercised
 * implicitly everywhere; here we verify level switching and death on
 * panic).
 */

#include <gtest/gtest.h>

#include "base/logging.hh"

namespace microscale
{
namespace
{

TEST(Logging, SetLevelReturnsPrevious)
{
    const LogLevel prev = setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    const LogLevel quiet = setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(quiet, LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(prev);
}

TEST(Logging, ConcatFormatsMixedArgs)
{
    EXPECT_EQ(detail::concat("a=", 1, " b=", 2.5), "a=1 b=2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH({ MS_PANIC("boom ", 42); }, "boom 42");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT({ fatal("bad config ", 7); },
                ::testing::ExitedWithCode(1), "bad config 7");
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    const LogLevel prev = setLogLevel(LogLevel::Quiet);
    warn("suppressed warning");
    inform("suppressed info");
    verbose("suppressed debug");
    setLogLevel(prev);
}

} // namespace
} // namespace microscale
