/**
 * @file
 * Unit tests for the request-conservation ledger: balanced books
 * verify clean, and each sabotage hook (swallowed terminal, dropped
 * status, double close, unknown id) is caught with a diagnostic.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/ledger.hh"

namespace microscale::chaos
{
namespace
{

TEST(Ledger, BalancedBooksVerifyClean)
{
    RequestLedger ledger;
    const RequestId a = ledger.open();
    const RequestId b = ledger.open();
    const RequestId c = ledger.open();
    ledger.close(a, svc::Status::Ok);
    ledger.close(b, svc::Status::Timeout);
    ledger.close(c, svc::Status::Overload);

    std::vector<std::string> violations;
    EXPECT_TRUE(ledger.verify(violations));
    EXPECT_TRUE(violations.empty());
    EXPECT_EQ(ledger.issued(), 3u);
    EXPECT_EQ(ledger.terminals(), 3u);
    EXPECT_EQ(ledger.openCount(), 0u);
    EXPECT_EQ(ledger.terminals(svc::Status::Ok), 1u);
    EXPECT_EQ(ledger.terminals(svc::Status::Timeout), 1u);
    EXPECT_EQ(ledger.terminals(svc::Status::Overload), 1u);
}

TEST(Ledger, LeakedRequestIsCaught)
{
    RequestLedger ledger;
    const RequestId a = ledger.open();
    ledger.open(); // never closed

    ledger.close(a, svc::Status::Ok);

    std::vector<std::string> violations;
    EXPECT_FALSE(ledger.verify(violations));
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("never reached a terminal state"),
              std::string::npos);
    EXPECT_EQ(ledger.openCount(), 1u);
}

TEST(Ledger, BreakNextTerminalForcesLeak)
{
    RequestLedger ledger;
    const RequestId a = ledger.open();
    const RequestId b = ledger.open();

    ledger.breakNextTerminal();
    ledger.close(a, svc::Status::Ok); // swallowed
    ledger.close(b, svc::Status::Ok); // lands

    std::vector<std::string> violations;
    EXPECT_FALSE(ledger.verify(violations));
    EXPECT_EQ(ledger.openCount(), 1u);
    EXPECT_EQ(ledger.terminals(), 1u);
}

TEST(Ledger, DropStatusSwallowsOnlyThatStatus)
{
    RequestLedger ledger;
    ledger.setDropStatus(svc::Status::Timeout);
    const RequestId a = ledger.open();
    const RequestId b = ledger.open();

    ledger.close(a, svc::Status::Timeout); // swallowed: stays open
    ledger.close(b, svc::Status::Ok);      // lands

    std::vector<std::string> violations;
    EXPECT_FALSE(ledger.verify(violations));
    EXPECT_EQ(ledger.openCount(), 1u);
    EXPECT_EQ(ledger.terminals(svc::Status::Ok), 1u);
    EXPECT_EQ(ledger.terminals(svc::Status::Timeout), 0u);
}

TEST(Ledger, DoubleCloseIsCaught)
{
    RequestLedger ledger;
    const RequestId a = ledger.open();
    ledger.close(a, svc::Status::Ok);
    ledger.close(a, svc::Status::Timeout);

    std::vector<std::string> violations;
    EXPECT_FALSE(ledger.verify(violations));
    EXPECT_EQ(ledger.doubleCloses(), 1u);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("terminated twice"), std::string::npos);
    // The duplicate terminal must not double-count.
    EXPECT_EQ(ledger.terminals(), 1u);
}

TEST(Ledger, UnknownIdIsCaught)
{
    RequestLedger ledger;
    ledger.close(/*id=*/99, svc::Status::Ok);

    std::vector<std::string> violations;
    EXPECT_FALSE(ledger.verify(violations));
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("unknown request ids"),
              std::string::npos);
}

TEST(Ledger, WriteAckLedgerMaxMergesVersions)
{
    RequestLedger ledger;
    ledger.recordAckedWrite("ordersOfUser:7", 3);
    ledger.recordAckedWrite("ordersOfUser:7", 1); // stale, keeps max
    ledger.recordAckedWrite("ordersOfUser:9", 2);

    EXPECT_EQ(ledger.ackedWriteCount(), 3u);
    ASSERT_EQ(ledger.ackedWrites().size(), 2u);
    EXPECT_EQ(ledger.ackedWrites().at("ordersOfUser:7"), 3u);
    EXPECT_EQ(ledger.ackedWrites().at("ordersOfUser:9"), 2u);

    std::vector<std::string> violations;
    EXPECT_TRUE(ledger.verifyReplication(violations));
    EXPECT_TRUE(violations.empty());
}

TEST(Ledger, LostAckedWriteIsAViolation)
{
    RequestLedger ledger;
    ledger.recordAckedWrite("ordersOfUser:7", 3);
    ledger.recordLostAckedWrite("ordersOfUser:7", 3);

    std::vector<std::string> violations;
    EXPECT_FALSE(ledger.verifyReplication(violations));
    EXPECT_EQ(ledger.lostAckedWrites(), 1u);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("not quorum-readable"),
              std::string::npos);
    EXPECT_NE(violations[0].find("ordersOfUser:7@v3"),
              std::string::npos);
}

TEST(Ledger, LostWriteLinesAreBoundedWithOverflowCount)
{
    RequestLedger ledger;
    for (unsigned i = 0; i < 12; ++i)
        ledger.recordLostAckedWrite("e:" + std::to_string(i), 1);

    std::vector<std::string> violations;
    EXPECT_FALSE(ledger.verifyReplication(violations));
    // 8 detail lines plus one "... and N more" summary.
    ASSERT_EQ(violations.size(), 9u);
    EXPECT_NE(violations.back().find("4 more lost acked write(s)"),
              std::string::npos);
}

TEST(Ledger, StaleQuorumReadIsAViolation)
{
    RequestLedger ledger;
    ledger.recordStaleQuorumRead();
    ledger.recordStaleQuorumRead();

    std::vector<std::string> violations;
    EXPECT_FALSE(ledger.verifyReplication(violations));
    EXPECT_EQ(ledger.staleQuorumReads(), 2u);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("2 quorum read(s)"),
              std::string::npos);

    // The replication ledger is independent of request conservation.
    violations.clear();
    EXPECT_TRUE(ledger.verify(violations));
}

} // namespace
} // namespace microscale::chaos
