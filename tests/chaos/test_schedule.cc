/**
 * @file
 * Tests for the seeded fault-schedule generator: determinism (same
 * seed, same space => byte-identical script), bounds (event count and
 * injection ticks), and target validity (every event names something
 * the declared fault space contains).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "chaos/schedule.hh"
#include "chaos/search.hh"

namespace microscale::chaos
{
namespace
{

FaultSpace
testSpace()
{
    FaultSpace space;
    space.services = {{"webui", 4}, {"auth", 2}, {"persistence", 4}};
    space.links = {{"external", "webui"}, {"webui", "auth"}};
    space.ccxDomains = 8;
    return space;
}

TEST(Schedule, SameSeedIsByteIdentical)
{
    const FaultSpace space = testSpace();
    for (std::uint64_t seed : {1ull, 7ull, 12345ull}) {
        const svc::FaultScript a =
            randomSchedule(seed, space, 12, 1000, 500000);
        const svc::FaultScript b =
            randomSchedule(seed, space, 12, 1000, 500000);
        EXPECT_EQ(describeFaultScript(a), describeFaultScript(b))
            << "seed " << seed;
        EXPECT_FALSE(a.empty());
    }
}

TEST(Schedule, DifferentSeedsDiffer)
{
    const FaultSpace space = testSpace();
    const svc::FaultScript a = randomSchedule(1, space, 12, 1000, 500000);
    const svc::FaultScript b = randomSchedule(2, space, 12, 1000, 500000);
    EXPECT_NE(describeFaultScript(a), describeFaultScript(b));
}

TEST(Schedule, RespectsBoundsAndTargets)
{
    const FaultSpace space = testSpace();
    std::set<std::string> service_names;
    for (const FaultSpace::ServiceInfo &s : space.services)
        service_names.insert(s.name);
    std::set<std::pair<std::string, std::string>> links(
        space.links.begin(), space.links.end());

    const Tick start = 2000;
    const Tick end = 300000;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const svc::FaultScript script =
            randomSchedule(seed, space, 10, start, end);
        EXPECT_LE(script.events.size(), 10u) << "seed " << seed;
        EXPECT_GE(script.events.size(), 1u) << "seed " << seed;
        for (const svc::FaultEvent &e : script.events) {
            EXPECT_GE(e.at, start) << "seed " << seed;
            // Recovery events land at onset + 1 + draw, so the latest
            // legal tick is one past the window end.
            EXPECT_LE(e.at, end + 1) << "seed " << seed;
            if (faultIsLinkKind(e.kind)) {
                std::pair<std::string, std::string> fwd{e.service,
                                                        e.peer};
                std::pair<std::string, std::string> rev{e.peer,
                                                        e.service};
                EXPECT_TRUE(links.count(fwd) || links.count(rev))
                    << "seed " << seed << ": unknown link " << e.service
                    << "<->" << e.peer;
            } else if (e.kind ==
                           svc::FaultEvent::Kind::CorrelatedDown ||
                       e.kind == svc::FaultEvent::Kind::CorrelatedUp) {
                EXPECT_LT(e.replica, space.ccxDomains)
                    << "seed " << seed;
            } else if (!e.service.empty()) {
                EXPECT_TRUE(service_names.count(e.service))
                    << "seed " << seed << ": unknown service "
                    << e.service;
                unsigned replicas = 0;
                for (const FaultSpace::ServiceInfo &s : space.services) {
                    if (s.name == e.service)
                        replicas = s.replicas;
                }
                if (e.kind == svc::FaultEvent::Kind::ReplicaDown ||
                    e.kind == svc::FaultEvent::Kind::ReplicaUp ||
                    e.kind == svc::FaultEvent::Kind::ReplicaSlow) {
                    EXPECT_LT(e.replica, replicas) << "seed " << seed;
                }
            }
        }
    }
}

TEST(Schedule, ClusterSpaceDrawsNodeAndFabricFaults)
{
    FaultSpace space = testSpace();
    space.clusterNodes = 2;
    unsigned node_events = 0;
    unsigned fabric_events = 0;
    for (std::uint64_t seed = 1; seed <= 80; ++seed) {
        const svc::FaultScript script =
            randomSchedule(seed, space, 10, 2000, 300000);
        for (const svc::FaultEvent &e : script.events) {
            using Kind = svc::FaultEvent::Kind;
            if (e.kind == Kind::NodeDown || e.kind == Kind::NodeUp) {
                ++node_events;
                EXPECT_LT(e.replica, space.clusterNodes)
                    << "seed " << seed;
            } else if (e.kind == Kind::FabricLoss ||
                       e.kind == Kind::FabricPartition ||
                       e.kind == Kind::FabricHeal) {
                ++fabric_events;
                EXPECT_LT(e.replica, space.clusterNodes)
                    << "seed " << seed;
                EXPECT_LT(e.peerReplica, space.clusterNodes)
                    << "seed " << seed;
                EXPECT_NE(e.replica, e.peerReplica) << "seed " << seed;
            }
        }
    }
    EXPECT_GT(node_events, 0u);
    EXPECT_GT(fabric_events, 0u);
}

TEST(Schedule, SingleMachineSpaceNeverDrawsClusterFaults)
{
    // clusterNodes = 0 must keep the family draw on the original
    // range, so pre-cluster schedules stay byte-identical per seed.
    const FaultSpace space = testSpace();
    for (std::uint64_t seed = 1; seed <= 80; ++seed) {
        const svc::FaultScript script =
            randomSchedule(seed, space, 10, 2000, 300000);
        for (const svc::FaultEvent &e : script.events) {
            using Kind = svc::FaultEvent::Kind;
            EXPECT_NE(e.kind, Kind::NodeDown) << "seed " << seed;
            EXPECT_NE(e.kind, Kind::NodeUp) << "seed " << seed;
            EXPECT_NE(e.kind, Kind::FabricLoss) << "seed " << seed;
            EXPECT_NE(e.kind, Kind::FabricPartition) << "seed " << seed;
            EXPECT_NE(e.kind, Kind::FabricHeal) << "seed " << seed;
        }
    }
}

TEST(Schedule, ClusterHarnessSpaceSpansBothNodes)
{
    const FaultSpace space = harnessFaultSpace(/*clusterHarness=*/true);
    // Two active nodes plus the spare that joins mid-window.
    EXPECT_EQ(space.clusterNodes, 3u);
    EXPECT_GE(space.services.size(), 5u);
    for (const FaultSpace::ServiceInfo &s : space.services)
        EXPECT_GE(s.replicas, 2u) << s.name;
    EXPECT_GE(space.links.size(), 5u);
    EXPECT_GT(space.ccxDomains, 0u);

    // The replicated data tier arms the shard fault families, on the
    // two initially-active nodes.
    EXPECT_EQ(space.dataShards, 2u);
    ASSERT_EQ(space.dataShardNodes.size(), 2u);
    EXPECT_EQ(space.dataShardNodes[0], 0u);
    EXPECT_EQ(space.dataShardNodes[1], 1u);

    // The single-machine space must stay replication-free so its
    // schedules remain byte-identical per seed.
    const FaultSpace solo = harnessFaultSpace();
    EXPECT_EQ(solo.dataShards, 0u);
    EXPECT_TRUE(solo.dataShardNodes.empty());
}

TEST(Schedule, DataFamiliesGatedOnDataShards)
{
    // Same seed, same space except dataShards: without a data tier the
    // schedule must be byte-identical to the pre-replication draw; with
    // one armed, some seed in a small range draws a shard fault.
    FaultSpace space;
    space.services = {{"webui", 3}, {"persistence", 2}};
    space.links = {{"webui", "persistence"}};
    space.ccxDomains = 4;
    space.clusterNodes = 2;

    FaultSpace armed = space;
    armed.dataShards = 2;
    armed.dataShardNodes = {0, 1};

    bool shard_fault_seen = false;
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        const svc::FaultScript base = randomSchedule(
            seed, space, 8, 10 * kMillisecond, 400 * kMillisecond);
        const svc::FaultScript with = randomSchedule(
            seed, armed, 8, 10 * kMillisecond, 400 * kMillisecond);
        for (const svc::FaultEvent &e : with.events) {
            if (e.service.rfind("shard", 0) == 0)
                shard_fault_seen = true;
        }
        // The ungated space never names a shard.
        for (const svc::FaultEvent &e : base.events)
            EXPECT_NE(e.service.rfind("shard", 0), 0u);
        // Determinism: regenerating either space repeats exactly.
        EXPECT_EQ(describeFaultScript(base),
                  describeFaultScript(randomSchedule(
                      seed, space, 8, 10 * kMillisecond,
                      400 * kMillisecond)));
        EXPECT_EQ(describeFaultScript(with),
                  describeFaultScript(randomSchedule(
                      seed, armed, 8, 10 * kMillisecond,
                      400 * kMillisecond)));
    }
    EXPECT_TRUE(shard_fault_seen);
}

TEST(Schedule, HarnessSpaceHasMultiReplicaServicesAndLinks)
{
    // The chaos harness derives its fault space from the actual
    // placement; if a refactor collapses services to one replica the
    // gray/crash faults stop meaning anything, so pin the shape here.
    const FaultSpace space = harnessFaultSpace();
    EXPECT_GE(space.services.size(), 5u);
    for (const FaultSpace::ServiceInfo &s : space.services)
        EXPECT_GE(s.replicas, 2u) << s.name;
    EXPECT_GE(space.links.size(), 5u);
    EXPECT_GT(space.ccxDomains, 0u);

    Tick start = 0;
    Tick end = 0;
    harnessWindow(start, end);
    EXPECT_LT(start, end);
}

} // namespace
} // namespace microscale::chaos
