/**
 * @file
 * Tests for the chaos harness: healthy and faulted schedules run
 * clean through every invariant, verdicts are deterministic
 * (fingerprint-equal across repeat runs), the planted ledger bug is
 * caught, and the ddmin shrinker reduces it to a tiny repro.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "chaos/schedule.hh"
#include "chaos/search.hh"

namespace microscale::chaos
{
namespace
{

svc::FaultScript
scheduleForSeed(std::uint64_t seed, unsigned maxEvents = 8)
{
    Tick start = 0;
    Tick end = 0;
    harnessWindow(start, end);
    return randomSchedule(seed, harnessFaultSpace(), maxEvents, start,
                          end);
}

TEST(Search, HealthyRunIsClean)
{
    const ChaosVerdict v = runSchedule(svc::FaultScript{}, {});
    EXPECT_TRUE(v.clean())
        << (v.violations.empty() ? "" : v.violations.front());
    EXPECT_GT(v.issued, 0u);
    EXPECT_EQ(v.issued, v.terminals);
    EXPECT_EQ(v.faultsApplied, 0u);
}

TEST(Search, FaultedRunIsCleanAndDeterministic)
{
    const svc::FaultScript script = scheduleForSeed(3);
    const ChaosVerdict a = runSchedule(script, {});
    EXPECT_TRUE(a.clean())
        << (a.violations.empty() ? "" : a.violations.front());
    EXPECT_GT(a.faultsApplied, 0u);

    const ChaosVerdict b = runSchedule(script, {});
    EXPECT_EQ(fingerprint(script, a), fingerprint(script, b));
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.byStatus, b.byStatus);
}

TEST(Search, EjectionModeIsClean)
{
    ChaosRunOptions opts;
    opts.eject = true;
    const ChaosVerdict v = runSchedule(scheduleForSeed(5), opts);
    EXPECT_TRUE(v.clean())
        << (v.violations.empty() ? "" : v.violations.front());
}

TEST(Search, InjectedLedgerBugIsCaughtAndShrunk)
{
    // Seed 4 is a known bug-tripping schedule for the fixed harness:
    // it produces client timeouts, which the sabotaged ledger drops.
    // Scan a few seeds anyway so harness tuning doesn't silently
    // invalidate the test.
    ChaosRunOptions opts;
    opts.injectBug = true;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const svc::FaultScript script = scheduleForSeed(seed);
        const ChaosVerdict v = runSchedule(script, opts);
        if (v.clean())
            continue;
        const svc::FaultScript minimal = shrinkSchedule(script, opts);
        EXPECT_GE(minimal.events.size(), 1u);
        EXPECT_LE(minimal.events.size(), 4u)
            << describeFaultScript(minimal);
        EXPECT_FALSE(runSchedule(minimal, opts).clean());
        return;
    }
    FAIL() << "no schedule in seeds 1..10 tripped the planted bug";
}

TEST(Search, ClusterNodeLossConservesLedger)
{
    // Hand-written worst case for the 2-node harness: node 1 dies
    // mid-run (taking app replicas plus its persistence shard), the
    // fabric between the nodes partitions shortly after, and only the
    // partition heals. Every admitted request must still reach exactly
    // one terminal state and the world must drain clean.
    Tick start = 0;
    Tick end = 0;
    harnessWindow(start, end);
    const Tick third = start + (end - start) / 3;

    svc::FaultScript script;
    svc::FaultEvent down;
    down.kind = svc::FaultEvent::Kind::NodeDown;
    down.at = third;
    down.replica = 1;
    script.events.push_back(down);
    svc::FaultEvent cut;
    cut.kind = svc::FaultEvent::Kind::FabricPartition;
    cut.at = third + 1000;
    cut.replica = 0;
    cut.peerReplica = 1;
    script.events.push_back(cut);
    svc::FaultEvent heal = cut;
    heal.kind = svc::FaultEvent::Kind::FabricHeal;
    heal.at = 2 * third;
    script.events.push_back(heal);

    ChaosRunOptions opts;
    opts.cluster = true;
    const ChaosVerdict v = runSchedule(script, opts);
    EXPECT_TRUE(v.clean())
        << (v.violations.empty() ? "" : v.violations.front());
    EXPECT_GT(v.issued, 0u);
    EXPECT_EQ(v.issued, v.terminals);
    EXPECT_EQ(v.faultsApplied, 3u);
    EXPECT_EQ(v.faultsSkipped, 0u);
}

TEST(Search, ClusterSearchIsCleanAndDeterministic)
{
    SearchOptions opts;
    opts.seed = 201;
    opts.schedules = 2;
    opts.run.cluster = true;
    std::ostringstream a;
    std::ostringstream b;
    const SearchResult ra = runSearch(opts, a);
    const SearchResult rb = runSearch(opts, b);
    EXPECT_EQ(ra.ran, 2u);
    EXPECT_EQ(ra.violating, 0u);
    EXPECT_EQ(ra.combinedFingerprint, rb.combinedFingerprint);
    EXPECT_EQ(a.str(), b.str());
}

TEST(Search, RunSearchIsDeterministic)
{
    SearchOptions opts;
    opts.seed = 1;
    opts.schedules = 3;
    std::ostringstream a;
    std::ostringstream b;
    const SearchResult ra = runSearch(opts, a);
    const SearchResult rb = runSearch(opts, b);
    EXPECT_EQ(ra.ran, 3u);
    EXPECT_EQ(ra.violating, 0u);
    EXPECT_EQ(ra.combinedFingerprint, rb.combinedFingerprint);
    EXPECT_EQ(a.str(), b.str());
}

} // namespace
} // namespace microscale::chaos
