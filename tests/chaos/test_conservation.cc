/**
 * @file
 * Request-conservation coverage over the golden workloads: the five
 * reduced FIG-01/05/12/14/15 scenarios pinned by the byte-identity
 * goldens all run with the ledger attached and a full drain, and
 * every one must balance — zero leaks, zero double closes, issued ==
 * terminals. A final test plants a broken counter in the FIG-12 run
 * and checks the ledger flags it, proving the green results above
 * mean something.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/ledger.hh"
#include "core/experiment.hh"
#include "teastore/chaos.hh"
#include "teastore/criticality.hh"
#include "topo/machine.hh"

namespace microscale::chaos
{
namespace
{

/** The reduced golden base scenario (tests/integration/test_golden). */
core::ExperimentConfig
goldenBase()
{
    core::ExperimentConfig c;
    c.machine = topo::small8();
    c.app.store.categories = 4;
    c.app.store.productsPerCategory = 10;
    c.app.store.users = 20;
    c.sizing.webui = {1, 8};
    c.sizing.auth = {1, 4};
    c.sizing.persistence = {1, 8};
    c.sizing.recommender = {1, 2};
    c.sizing.image = {1, 8};
    c.sizing.registry = {1, 1};
    c.load.users = 60;
    c.load.meanThink = 50 * kMillisecond;
    c.warmup = 200 * kMillisecond;
    c.measure = 400 * kMillisecond;
    return c;
}

/** Run one config with the ledger attached and expect balanced books. */
void
expectConserved(core::ExperimentConfig config, const std::string &what)
{
    RequestLedger ledger;
    config.ledger = &ledger;
    config.drainAtEnd = true;
    core::runExperiment(config);

    std::vector<std::string> violations;
    EXPECT_TRUE(ledger.verify(violations))
        << what << ": "
        << (violations.empty() ? "" : violations.front());
    EXPECT_GT(ledger.issued(), 0u) << what;
    EXPECT_EQ(ledger.issued(), ledger.terminals()) << what;
    EXPECT_EQ(ledger.openCount(), 0u) << what;
}

TEST(Conservation, Fig01ClosedLoop)
{
    expectConserved(goldenBase(), "fig01");
}

TEST(Conservation, Fig05PlacementCcxAware)
{
    core::ExperimentConfig c = goldenBase();
    c.placement = core::PlacementKind::CcxAware;
    expectConserved(c, "fig05");
}

TEST(Conservation, Fig12ResilientChaos)
{
    core::ExperimentConfig c = goldenBase();
    c.faults = teastore::makeChaosScript(
        teastore::allChaosScenarios().front(), c.warmup, c.measure);
    c.resilience = teastore::resilientPolicy();
    c.app.degradedFallbacks = true;
    expectConserved(c, "fig12");
}

TEST(Conservation, Fig14OverloadOpenLoop)
{
    core::ExperimentConfig c = goldenBase();
    c.openLoopRps = 400.0;
    c.resilience = teastore::resilientPolicy();
    c.app.degradedFallbacks = true;
    c.overload = teastore::overloadAwarePolicy();
    expectConserved(c, "fig14");
}

TEST(Conservation, Fig15TraceAttribution)
{
    core::ExperimentConfig c = goldenBase();
    c.placement = core::PlacementKind::CcxAware;
    c.trace.enabled = true;
    c.trace.sampleRate = 1.0;
    expectConserved(c, "fig15");
}

TEST(Conservation, BrokenCounterIsCaught)
{
    core::ExperimentConfig c = goldenBase();
    c.faults = teastore::makeChaosScript(
        teastore::allChaosScenarios().front(), c.warmup, c.measure);
    c.resilience = teastore::resilientPolicy();
    c.app.degradedFallbacks = true;

    RequestLedger ledger;
    ledger.breakNextTerminal(); // the deliberately broken counter
    c.ledger = &ledger;
    c.drainAtEnd = true;
    core::runExperiment(c);

    std::vector<std::string> violations;
    EXPECT_FALSE(ledger.verify(violations));
    ASSERT_FALSE(violations.empty());
    EXPECT_NE(violations.front().find("never reached a terminal state"),
              std::string::npos);
    EXPECT_EQ(ledger.openCount(), 1u);
}

} // namespace
} // namespace microscale::chaos
