/**
 * @file
 * End-to-end integration tests, including the headline regression:
 * on the paper's 128-logical-CPU machine, CCX-aware placement must
 * beat the tuned OS-default baseline on both throughput and p99.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace microscale::core
{
namespace
{

/** The paper's machine at a saturating operating point (short run). */
ExperimentConfig
paperConfig()
{
    ExperimentConfig c;
    c.machine = topo::rome128();
    c.load.users = 3000;
    c.warmup = 500 * kMillisecond;
    c.measure = 800 * kMillisecond;
    // Calibrated demand shares (measureDemand + runRefined on this
    // workload; pinned-regime values).
    c.demand.webui = 0.45;
    c.demand.auth = 0.03;
    c.demand.persistence = 0.065;
    c.demand.recommender = 0.045;
    c.demand.image = 0.41;
    return c;
}

TEST(EndToEnd, BaselineSaturatesTheMachine)
{
    ExperimentConfig c = paperConfig();
    c.placement = PlacementKind::OsDefault;
    const RunResult r = runExperiment(c);
    EXPECT_GT(r.cpuUtilization, 0.9);
    EXPECT_GT(r.throughputRps, 1000.0);
    // At full load the socket runs at the all-core frequency.
    EXPECT_NEAR(r.avgFreqGhz, c.machine.freq.allCoreGhz, 0.15);
    // The default scheduler migrates heavily.
    EXPECT_GT(r.sched.migrations, 1000u);
}

TEST(EndToEnd, HeadlineCcxAwareBeatsBaseline)
{
    ExperimentConfig c = paperConfig();
    c.placement = PlacementKind::OsDefault;
    const RunResult base = runExperiment(c);
    c.placement = PlacementKind::CcxAware;
    const RunResult ccx = runExperiment(c);

    const double tput_gain =
        ccx.throughputRps / base.throughputRps - 1.0;
    const double p99_delta = ccx.latency.p99Ms / base.latency.p99Ms - 1.0;

    // Paper: +22% throughput, -18% latency. Require the shape: a
    // double-digit throughput win and a clear latency cut.
    EXPECT_GT(tput_gain, 0.10) << "tput gain " << tput_gain;
    EXPECT_LT(tput_gain, 0.45) << "tput gain " << tput_gain;
    EXPECT_LT(p99_delta, -0.10) << "p99 delta " << p99_delta;

    // Mechanisms: no cross-CCX migrations, far better cache behaviour.
    EXPECT_EQ(ccx.sched.ccxMigrations, 0u);
    EXPECT_LT(ccx.total.l3MissRatio, base.total.l3MissRatio * 0.5);
    EXPECT_GT(ccx.total.ipc, base.total.ipc * 1.1);
}

TEST(EndToEnd, MicroservicesLookLikeThePaperSays)
{
    ExperimentConfig c = paperConfig();
    c.placement = PlacementKind::OsDefault;
    const RunResult r = runExperiment(c);
    // Low IPC, high context-switch rate, large kernel share - the
    // contrast with conventional CPU-design workloads.
    EXPECT_LT(r.total.ipc, 0.8);
    EXPECT_GT(r.total.csPerSec, 10000.0);
    EXPECT_GT(r.total.kernelShare, 0.15);
    EXPECT_GT(r.total.icacheMpki, 5.0);
    // Every service saw traffic.
    for (const auto &[name, row] : r.servicePerf) {
        if (name != teastore::names::kRegistry)
            EXPECT_GT(row.utilizationCpus, 0.0) << name;
    }
}

TEST(EndToEnd, ClosedLoopLittleLawHolds)
{
    // Little's law sanity: users = tput * (latency + think).
    ExperimentConfig c = paperConfig();
    c.load.users = 1000; // below saturation
    c.placement = PlacementKind::OsDefault;
    const RunResult r = runExperiment(c);
    const double think_s = ticksToSeconds(c.load.meanThink);
    const double lat_s = r.latency.meanMs / 1e3;
    const double users_est = r.throughputRps * (lat_s + think_s);
    EXPECT_NEAR(users_est, 1000.0, 150.0);
}

} // namespace
} // namespace microscale::core
