/**
 * @file
 * Golden-output byte-equality tests for the engine hot path.
 *
 * Each scenario is a reduced FIG-01/05/12/14/15-style experiment; its
 * RunResult JSON (core::writeJson) must stay byte-identical to the
 * captured golden produced by the pre-refactor engine. These pin the
 * event-core refactor: any change to event ordering, RNG draw
 * sequences or histogram accumulation in the default (per-user) mode
 * shows up as a diff here.
 *
 * Regenerating (only when an intentional behavior change lands):
 *   MICROSCALE_REGEN_GOLDENS=1 ./test_integration \
 *       --gtest_filter='Golden.*'
 * then commit the updated files under tests/integration/golden/.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "core/json.hh"
#include "teastore/chaos.hh"
#include "teastore/criticality.hh"
#include "topo/machine.hh"

#ifndef MICROSCALE_GOLDEN_DIR
#error "MICROSCALE_GOLDEN_DIR must be defined by the build"
#endif

namespace microscale::core
{
namespace
{

/** The reduced base scenario: small machine, short windows. */
ExperimentConfig
baseConfig()
{
    ExperimentConfig c;
    c.machine = topo::small8();
    c.app.store.categories = 4;
    c.app.store.productsPerCategory = 10;
    c.app.store.users = 20;
    c.sizing.webui = {1, 8};
    c.sizing.auth = {1, 4};
    c.sizing.persistence = {1, 8};
    c.sizing.recommender = {1, 2};
    c.sizing.image = {1, 8};
    c.sizing.registry = {1, 1};
    c.load.users = 60;
    c.load.meanThink = 50 * kMillisecond;
    c.warmup = 200 * kMillisecond;
    c.measure = 400 * kMillisecond;
    return c;
}

std::string
resultJson(const RunResult &r)
{
    std::ostringstream os;
    writeJson(os, r);
    os << "\n";
    return os.str();
}

/** Compare against (or regenerate) tests/integration/golden/<name>. */
void
checkGolden(const std::string &name, const std::string &json)
{
    const std::string path =
        std::string(MICROSCALE_GOLDEN_DIR) + "/" + name;
    if (std::getenv("MICROSCALE_REGEN_GOLDENS") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << json;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (run with MICROSCALE_REGEN_GOLDENS=1)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(json, want.str()) << name << " diverged from golden";
}

TEST(Golden, Fig01ClosedLoop)
{
    const RunResult r = runExperiment(baseConfig());
    checkGolden("fig01_closed_loop.json", resultJson(r));
}

TEST(Golden, Fig05PlacementRefined)
{
    ExperimentConfig c = baseConfig();
    c.placement = PlacementKind::CcxAware;
    const RunResult r = runRefined(c, 1, nullptr);
    checkGolden("fig05_placement.json", resultJson(r));
}

TEST(Golden, Fig12ResilientChaos)
{
    ExperimentConfig c = baseConfig();
    c.faults = teastore::makeChaosScript(
        teastore::allChaosScenarios().front(), c.warmup, c.measure);
    c.resilience = teastore::resilientPolicy();
    c.app.degradedFallbacks = true;
    const RunResult r = runExperiment(c);
    checkGolden("fig12_resilience.json", resultJson(r));
}

TEST(Golden, Fig14OverloadOpenLoop)
{
    ExperimentConfig c = baseConfig();
    c.openLoopRps = 400.0;
    c.resilience = teastore::resilientPolicy();
    c.app.degradedFallbacks = true;
    c.overload = teastore::overloadAwarePolicy();
    const RunResult r = runExperiment(c);
    checkGolden("fig14_overload.json", resultJson(r));
}

TEST(Golden, Fig15TraceAttribution)
{
    ExperimentConfig c = baseConfig();
    c.placement = PlacementKind::CcxAware;
    c.trace.enabled = true;
    c.trace.sampleRate = 1.0;
    const RunResult r = runExperiment(c);
    checkGolden("fig15_trace.json", resultJson(r));
}

} // namespace
} // namespace microscale::core
