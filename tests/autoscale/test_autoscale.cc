/**
 * @file
 * Tests for the autoscale subsystem: name lookups, the three scaling
 * policy families, the replica placer's capacity accounting, the
 * canonical schedule factory, and an end-to-end runElastic smoke run
 * including determinism across repeated and parallel sweeps.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "autoscale/elastic.hh"
#include "autoscale/placer.hh"
#include "autoscale/policy.hh"
#include "core/json.hh"
#include "core/sweep.hh"
#include "topo/presets.hh"

namespace microscale::autoscale
{
namespace
{

TEST(Names, PolicyRoundTrip)
{
    for (PolicyKind k : {PolicyKind::Static, PolicyKind::Threshold,
                         PolicyKind::QueueLaw, PolicyKind::Predictive})
        EXPECT_EQ(policyByName(policyName(k)), k);
    EXPECT_DEATH(policyByName("bogus"), "unknown scaling policy");
}

TEST(Names, PlacerRoundTrip)
{
    for (PlacerKind k : {PlacerKind::TopologyAware, PlacerKind::OsDefault})
        EXPECT_EQ(placerByName(placerName(k)), k);
    EXPECT_DEATH(placerByName("bogus"), "unknown placer");
}

ServiceSample
sampleAt(double utilization, unsigned active = 2, unsigned workers = 8,
         std::uint64_t queue = 0)
{
    ServiceSample s;
    s.service = "webui";
    s.intervalSec = 0.5;
    s.activeReplicas = active;
    s.workersPerReplica = workers;
    s.utilization = utilization;
    s.queueDepth = queue;
    return s;
}

TEST(ThresholdPolicy, HysteresisBands)
{
    PolicyParams p;
    auto policy = makePolicy(PolicyKind::Threshold, p);
    // Above the high-water mark: out by scaleOutStep.
    EXPECT_EQ(policy->desiredReplicas(sampleAt(0.9), 2), 3u);
    // In the dead band: hold.
    EXPECT_EQ(policy->desiredReplicas(sampleAt(0.5), 2), 2u);
    // Below the low-water mark with an empty queue: in by one.
    EXPECT_EQ(policy->desiredReplicas(sampleAt(0.1), 2), 1u);
    // Below the low-water mark but a queue remains: hold.
    EXPECT_EQ(policy->desiredReplicas(sampleAt(0.1, 2, 8, 5), 2), 2u);
}

TEST(ThresholdPolicy, DeepBacklogForcesScaleOutEvenAtLowUtil)
{
    PolicyParams p;
    auto policy = makePolicy(PolicyKind::Threshold, p);
    // queueDepth > active x workers means saturation regardless of
    // the instantaneous busy share.
    EXPECT_EQ(policy->desiredReplicas(sampleAt(0.4, 2, 8, 17), 2), 3u);
}

TEST(ThresholdPolicy, ScaleOutStepIsConfigurable)
{
    PolicyParams p;
    p.scaleOutStep = 3;
    auto policy = makePolicy(PolicyKind::Threshold, p);
    EXPECT_EQ(policy->desiredReplicas(sampleAt(0.9), 2), 5u);
}

TEST(StaticPolicy, NeverMoves)
{
    auto policy = makePolicy(PolicyKind::Static, PolicyParams{});
    EXPECT_EQ(policy->desiredReplicas(sampleAt(0.99, 1, 8, 100), 1), 1u);
    EXPECT_EQ(policy->desiredReplicas(sampleAt(0.0), 4), 4u);
}

TEST(QueueLawPolicy, SizesFromLittlesLaw)
{
    PolicyParams p;
    p.targetUtil = 0.5;
    auto policy = makePolicy(PolicyKind::QueueLaw, p);
    ServiceSample s = sampleAt(0.5, 2, 8);
    s.completionsPerSec = 380.0;
    s.failuresPerSec = 20.0;
    s.meanServiceMs = 20.0;
    // 400 req/s x 0.02 s = 8 busy workers; / (8 workers x 0.5 target)
    // = 2 replicas.
    EXPECT_EQ(policy->desiredReplicas(s, 1), 2u);
    // Double the demand: 4 replicas.
    s.completionsPerSec = 780.0;
    EXPECT_EQ(policy->desiredReplicas(s, 1), 4u);
    // No signal: hold.
    ServiceSample idle = sampleAt(0.0);
    EXPECT_EQ(policy->desiredReplicas(idle, 3), 3u);
}

TEST(PredictivePolicy, ScalesOnForecastBeforeThresholdIsHit)
{
    PolicyParams p;
    p.horizon = 4 * kSecond; // 8 control intervals of 0.5 s
    auto policy = makePolicy(PolicyKind::Predictive, p);
    // Feed a steady upward ramp that never crosses utilHigh itself;
    // the Holt forecast 8 steps ahead must cross it first.
    unsigned target = 2;
    bool scaled_out = false;
    double util = 0.30;
    for (int i = 0; i < 12 && !scaled_out; ++i, util += 0.04) {
        const unsigned desired =
            policy->desiredReplicas(sampleAt(util), target);
        if (desired > target)
            scaled_out = true;
    }
    EXPECT_TRUE(scaled_out);
    EXPECT_LT(util, 0.75); // fired before the reactive rule would
}

TEST(PredictivePolicy, FlatSignalHoldsSteady)
{
    PolicyParams p;
    auto policy = makePolicy(PolicyKind::Predictive, p);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(policy->desiredReplicas(sampleAt(0.5), 2), 2u);
}

class PlacerTest : public ::testing::Test
{
  protected:
    PlacerTest() : machine_(topo::rome128()) {}

    CpuMask
    budget(unsigned cores) const
    {
        return core::budgetMask(machine_, cores, /*smt=*/true);
    }

    topo::Machine machine_;
};

TEST_F(PlacerTest, TopologyAwareGrantsPinToLeastLoadedCcx)
{
    ReplicaPlacer placer(machine_, budget(16), PlacerKind::TopologyAware);
    ASSERT_EQ(placer.groupCount(), 4u); // 16 cores = 4 CCXs with SMT
    const PlacerGrant a = placer.grant();
    const PlacerGrant b = placer.grant();
    EXPECT_EQ(a.mask.count(), placer.quantumCpus());
    EXPECT_NE(a.home, kInvalidNode);
    // Different CCXs while idle groups remain.
    EXPECT_FALSE(a.mask.intersects(b.mask));
    EXPECT_DOUBLE_EQ(placer.grantedCpus(), a.cpus + b.cpus);
    EXPECT_EQ(placer.outstanding(), 2u);
}

TEST_F(PlacerTest, OsDefaultGrantsRoamTheOwnedMaskAtTheSameBill)
{
    ReplicaPlacer topo_placer(machine_, budget(16),
                              PlacerKind::TopologyAware);
    ReplicaPlacer os_placer(machine_, budget(16), PlacerKind::OsDefault);
    const PlacerGrant t = topo_placer.grant();
    const PlacerGrant o = os_placer.grant();
    // Identical capacity bill, different affinity: the OS-default
    // replica roams everything the app owns.
    EXPECT_DOUBLE_EQ(o.cpus, t.cpus);
    EXPECT_EQ(o.home, kInvalidNode);
    EXPECT_EQ(o.mask, os_placer.ownedMask());
    // A second grant reserves a second group; the owned mask grows.
    const CpuMask owned_before = os_placer.ownedMask();
    os_placer.grant();
    EXPECT_GT(os_placer.ownedMask().count(), owned_before.count());
}

TEST_F(PlacerTest, ReleaseReturnsCapacityAndReusesTheGroup)
{
    ReplicaPlacer placer(machine_, budget(16), PlacerKind::TopologyAware);
    const PlacerGrant a = placer.grant();
    const double after_one = placer.grantedCpus();
    placer.release(a.id);
    EXPECT_DOUBLE_EQ(placer.grantedCpus(), 0.0);
    EXPECT_EQ(placer.outstanding(), 0u);
    // The freed group is the least-loaded again.
    const PlacerGrant b = placer.grant();
    EXPECT_EQ(b.mask, a.mask);
    EXPECT_DOUBLE_EQ(placer.grantedCpus(), after_one);
}

TEST_F(PlacerTest, AdoptChargesExistingReplicas)
{
    ReplicaPlacer placer(machine_, budget(16), PlacerKind::TopologyAware);
    const PlacerGrant probe = placer.grant();
    placer.release(probe.id);
    // Adopting a single-CCX mask loads that group: the next grant
    // avoids it.
    const unsigned id = placer.adopt(probe.mask, probe.home);
    EXPECT_DOUBLE_EQ(placer.grantedCpus(), probe.cpus);
    const PlacerGrant next = placer.grant();
    EXPECT_FALSE(next.mask.intersects(probe.mask));
    placer.release(id);
}

TEST(MakeSchedule, CanonicalShapes)
{
    const Tick warmup = 2 * kSecond;
    const Tick measure = 24 * kSecond;
    const loadgen::LoadSchedule c =
        makeSchedule("constant", 600.0, 600.0, warmup, measure);
    EXPECT_EQ(c.name(), "constant");
    EXPECT_DOUBLE_EQ(c.rateAt(10 * kSecond), 600.0);

    const loadgen::LoadSchedule s =
        makeSchedule("spike", 600.0, 5000.0, warmup, measure);
    EXPECT_EQ(s.name(), "spike");
    EXPECT_DOUBLE_EQ(s.peakRate(), 5000.0);
    EXPECT_DOUBLE_EQ(s.rateAt(warmup), 600.0);
    // Plateau: spikeAt + rampUp landed, hold still running.
    EXPECT_DOUBLE_EQ(s.rateAt(warmup + measure / 3 + measure / 12 +
                              measure / 12),
                     5000.0);

    const loadgen::LoadSchedule d =
        makeSchedule("diurnal", 600.0, 3000.0, warmup, measure);
    EXPECT_EQ(d.name(), "diurnal");
    EXPECT_NEAR(d.peakRate(), 3000.0, 30.0);

    EXPECT_DEATH(makeSchedule("bogus", 1.0, 1.0, warmup, measure),
                 "unknown load schedule");
}

/** A small elastic config that runs in well under a second. */
ElasticConfig
smokeConfig()
{
    ElasticConfig ec;
    ec.base.machine = topo::rome128();
    ec.base.cores = 16;
    ec.base.placement = core::PlacementKind::CcxAware;
    ec.base.warmup = 300 * kMillisecond;
    ec.base.measure = 1200 * kMillisecond;
    ec.schedule = makeSchedule("spike", 200.0, 1200.0, ec.base.warmup,
                               ec.base.measure);
    ec.initialCores = 8;
    ec.autoscaler.period = 100 * kMillisecond;
    ec.autoscaler.warmup.registrationDelay = 100 * kMillisecond;
    ec.autoscaler.warmup.coldWindow = 200 * kMillisecond;
    ec.autoscaler.scaleOutCooldown = 100 * kMillisecond;
    ec.autoscaler.scaleInCooldown = 200 * kMillisecond;
    ec.autoscaler.maxReplicas = 3;
    return ec;
}

std::string
runToJson(const ElasticConfig &ec)
{
    std::ostringstream os;
    core::writeJson(os, runElastic(ec));
    return os.str();
}

TEST(RunElastic, FillsTheElasticSummary)
{
    AutoscalerTelemetry telemetry;
    const ElasticConfig ec = smokeConfig();
    const core::RunResult r = runElastic(ec, &telemetry);
    EXPECT_TRUE(r.elastic.active);
    EXPECT_EQ(r.elastic.schedule, "spike");
    EXPECT_EQ(r.elastic.policy, "threshold");
    EXPECT_EQ(r.elastic.placer, "topology-aware");
    EXPECT_GT(r.throughputRps, 0.0);
    EXPECT_GT(r.elastic.offeredPeakRps, r.elastic.offeredMeanRps);
    EXPECT_GT(r.elastic.coreSecondsGranted, 0.0);
    EXPECT_GT(r.elastic.steadyStateCpus, 0.0);
    EXPECT_FALSE(r.elastic.peakReplicas.empty());
    // Telemetry timeline only on request.
    EXPECT_TRUE(telemetry.timeline.empty());
}

TEST(RunElastic, TimelineRecordsEveryControlInterval)
{
    AutoscalerTelemetry telemetry;
    ElasticConfig ec = smokeConfig();
    ec.recordTimeline = true;
    runElastic(ec, &telemetry);
    ASSERT_FALSE(telemetry.timeline.empty());
    // One sample per scaled service per interval, in canonical order.
    for (const auto &interval : telemetry.timeline) {
        ASSERT_EQ(interval.size(), 5u);
        EXPECT_EQ(interval.front().service, "webui");
        EXPECT_EQ(interval.back().service, "image");
    }
}

TEST(RunElastic, DeterministicAcrossRepeatedRuns)
{
    EXPECT_EQ(runToJson(smokeConfig()), runToJson(smokeConfig()));
}

TEST(RunElastic, DeterministicAcrossSweepJobCounts)
{
    // The FIG-13 pattern: elastic points run through the parallel
    // SweepRunner via a custom runner hook. Serial and parallel sweeps
    // must produce byte-identical results in submission order.
    auto build = []() {
        std::vector<core::SweepPoint> points;
        for (const char *policy : {"threshold", "predictive"}) {
            ElasticConfig ec = smokeConfig();
            ec.autoscaler.policy = policyByName(policy);
            core::SweepPoint p;
            p.label = policy;
            p.config = ec.base;
            p.runner = [ec](const core::ExperimentConfig &) {
                return runElastic(ec);
            };
            points.push_back(std::move(p));
        }
        return points;
    };
    auto sweep = [&](unsigned jobs) {
        core::SweepOptions so;
        so.jobs = jobs;
        so.progress = false;
        std::string out;
        for (const core::SweepOutcome &o :
             core::SweepRunner(so).run(build())) {
            EXPECT_TRUE(o.ok) << o.error;
            std::ostringstream os;
            core::writeJson(os, o.result);
            out += o.label + "\n" + os.str();
        }
        return out;
    };
    EXPECT_EQ(sweep(1), sweep(2));
}

} // namespace
} // namespace microscale::autoscale
