/**
 * @file
 * Tests for PerfCounters arithmetic and derived metrics.
 */

#include <gtest/gtest.h>

#include "cpu/counters.hh"
#include "cpu/work.hh"

namespace microscale::cpu
{
namespace
{

PerfCounters
sample()
{
    PerfCounters c;
    c.instructions = 1e9;
    c.cycles = 2e9;
    c.busyNs = 8e8;
    c.l3Accesses = 5e6;
    c.l3Misses = 2e6;
    c.branchMisses = 4e6;
    c.icacheMisses = 8e6;
    c.kernelInstructions = 2.5e8;
    c.smtBusyNs = 4e8;
    c.contextSwitches = 1000;
    c.migrations = 100;
    c.ccxMigrations = 10;
    c.wakeups = 2000;
    return c;
}

TEST(Counters, DerivedMetrics)
{
    const PerfCounters c = sample();
    EXPECT_DOUBLE_EQ(c.ipc(), 0.5);
    EXPECT_DOUBLE_EQ(c.ghz(), 2.5);
    EXPECT_DOUBLE_EQ(c.l3Mpki(), 2.0);
    EXPECT_DOUBLE_EQ(c.l3MissRatio(), 0.4);
    EXPECT_DOUBLE_EQ(c.branchMpki(), 4.0);
    EXPECT_DOUBLE_EQ(c.icacheMpki(), 8.0);
    EXPECT_DOUBLE_EQ(c.kernelShare(), 0.25);
    EXPECT_DOUBLE_EQ(c.smtShare(), 0.5);
}

TEST(Counters, EmptyDerivedAreZero)
{
    const PerfCounters c;
    EXPECT_DOUBLE_EQ(c.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(c.ghz(), 0.0);
    EXPECT_DOUBLE_EQ(c.l3Mpki(), 0.0);
    EXPECT_DOUBLE_EQ(c.l3MissRatio(), 0.0);
    EXPECT_DOUBLE_EQ(c.kernelShare(), 0.0);
}

TEST(Counters, MergeAddsEverything)
{
    PerfCounters a = sample();
    a.merge(sample());
    EXPECT_DOUBLE_EQ(a.instructions, 2e9);
    EXPECT_DOUBLE_EQ(a.cycles, 4e9);
    EXPECT_EQ(a.contextSwitches, 2000u);
    EXPECT_EQ(a.wakeups, 4000u);
    // Ratios are invariant under self-merge.
    EXPECT_DOUBLE_EQ(a.ipc(), 0.5);
}

TEST(Counters, DeltaInvertsMerge)
{
    PerfCounters a = sample();
    PerfCounters b = sample();
    b.merge(sample());
    const PerfCounters d = b.delta(a);
    EXPECT_DOUBLE_EQ(d.instructions, 1e9);
    EXPECT_EQ(d.contextSwitches, 1000u);
    EXPECT_EQ(d.ccxMigrations, 10u);
}

TEST(Counters, Reset)
{
    PerfCounters c = sample();
    c.reset();
    EXPECT_DOUBLE_EQ(c.instructions, 0.0);
    EXPECT_EQ(c.migrations, 0u);
}

TEST(WorkProfile, DefaultsValidate)
{
    WorkProfile p;
    p.validate(); // must not panic
    computeBoundProfile().validate();
    memoryBoundProfile().validate();
    SUCCEED();
}

TEST(WorkProfileDeathTest, RejectsBadIpc)
{
    WorkProfile p;
    p.ipcBase = 0.0;
    EXPECT_DEATH(p.validate(), "ipcBase");
    p.ipcBase = 9.0;
    EXPECT_DEATH(p.validate(), "ipcBase");
}

TEST(WorkProfileDeathTest, RejectsBadSmtYield)
{
    WorkProfile p;
    p.smtYield = 0.3;
    EXPECT_DEATH(p.validate(), "smtYield");
    p.smtYield = 1.2;
    EXPECT_DEATH(p.validate(), "smtYield");
}

TEST(WorkProfileDeathTest, RejectsNegativeRates)
{
    WorkProfile p;
    p.l3Apki = -1.0;
    EXPECT_DEATH(p.validate(), "negative");
}

TEST(WorkProfile, ComputeVsMemoryBoundContrast)
{
    const WorkProfile c = computeBoundProfile();
    const WorkProfile m = memoryBoundProfile();
    EXPECT_GT(c.ipcBase, m.ipcBase);
    EXPECT_LT(c.l3Apki, m.l3Apki);
    EXPECT_LT(c.wssBytes, m.wssBytes);
    // Memory-bound code overlaps better under SMT.
    EXPECT_LT(c.smtYield, m.smtYield);
}

} // namespace
} // namespace microscale::cpu
