/**
 * @file
 * Tests for the execution engine: rates, SMT, cache sharing, NUMA,
 * cold-cache migration, frequency scaling, banking and accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "base/random.hh"
#include "cpu/exec.hh"
#include "sim/simulation.hh"
#include "topo/presets.hh"

namespace microscale::cpu
{
namespace
{

class ExecTest : public ::testing::Test
{
  protected:
    ExecTest()
        : machine_(topo::rome128()), engine_(sim_, machine_)
    {
        small_.name = "small-wss";
        small_.ipcBase = 1.0;
        small_.l3Apki = 10.0;
        small_.wssBytes = 4.0 * 1024 * 1024;
        small_.branchMpki = 0.0;
        small_.icacheMpki = 0.0;
        small_.smtYield = 0.6;

        big_ = small_;
        big_.name = "big-wss";
        big_.wssBytes = 64.0 * 1024 * 1024;

        other_ = small_;
        other_.name = "other-small";
    }

    ExecContext *
    makeCtx(const std::string &name, NodeId home = kInvalidNode)
    {
        ctxs_.push_back(std::make_unique<ExecContext>(name, home));
        return ctxs_.back().get();
    }

    /** Attach `instr` of `profile`, flagging completion. */
    void
    give(ExecContext *ctx, const WorkProfile &profile, double instr,
         bool *done = nullptr)
    {
        engine_.setWork(*ctx, profile, instr, [done] {
            if (done)
                *done = true;
        });
    }

    sim::Simulation sim_;
    topo::Machine machine_;
    ExecEngine engine_;
    WorkProfile small_, big_, other_;
    std::vector<std::unique_ptr<ExecContext>> ctxs_;
};

TEST_F(ExecTest, SoloRunsAtComputedRate)
{
    auto *ctx = makeCtx("t0");
    bool done = false;
    give(ctx, small_, 1e6, &done);
    const double rate = engine_.rateOn(*ctx, 0);
    EXPECT_GT(rate, 0.0);
    engine_.startRun(*ctx, 0);
    sim_.run();
    EXPECT_TRUE(done);
    const double expected_ns = 1e6 / rate;
    EXPECT_NEAR(static_cast<double>(sim_.now()), expected_ns,
                expected_ns * 0.01);
}

TEST_F(ExecTest, CountersMatchBudget)
{
    auto *ctx = makeCtx("t0");
    give(ctx, small_, 2e6);
    engine_.startRun(*ctx, 0);
    sim_.run();
    const PerfCounters &c = ctx->counters();
    EXPECT_NEAR(c.instructions, 2e6, 1e3);
    EXPECT_GT(c.cycles, 0.0);
    EXPECT_GT(c.busyNs, 0.0);
    // Fully resident working set: misses at the floor ratio.
    EXPECT_NEAR(c.l3MissRatio(), engine_.params().missFloor, 1e-6);
    EXPECT_NEAR(c.l3Accesses, 2e6 * small_.l3Apki / 1000.0, 10.0);
    EXPECT_DOUBLE_EQ(c.branchMisses, 0.0);
    EXPECT_NEAR(c.kernelInstructions, 2e6 * small_.kernelShare, 1e3);
}

TEST_F(ExecTest, IpcReflectsCacheStalls)
{
    auto *fits = makeCtx("fits");
    give(fits, small_, 1e6);
    engine_.startRun(*fits, 0);
    sim_.run();

    auto *spills = makeCtx("spills");
    give(spills, big_, 1e6);
    engine_.startRun(*spills, 8); // different CCX, clean state
    sim_.run();

    EXPECT_GT(fits->counters().ipc(), spills->counters().ipc());
    EXPECT_GT(spills->counters().l3MissRatio(), 0.5);
}

TEST_F(ExecTest, SmtSiblingReducesRate)
{
    auto *a = makeCtx("a");
    auto *b = makeCtx("b");
    give(a, small_, 1e9);
    give(b, small_, 1e9);
    engine_.startRun(*a, 0);
    const double solo = engine_.rateOn(*a, 0);
    engine_.startRun(*b, 64); // SMT sibling of cpu 0
    const double shared = engine_.rateOn(*a, 0);
    EXPECT_NEAR(shared / solo, small_.smtYield, 1e-9);
}

TEST_F(ExecTest, HeterogeneousSmtPairIsSlower)
{
    auto *a = makeCtx("a");
    auto *same = makeCtx("same");
    auto *diff = makeCtx("diff");
    give(a, small_, 1e9);
    give(same, small_, 1e9);
    give(diff, other_, 1e9);

    engine_.startRun(*a, 0);
    engine_.startRun(*same, 64);
    const double homo = engine_.rateOn(*a, 0);
    engine_.stopRun(*same);
    engine_.startRun(*diff, 64);
    const double hetero = engine_.rateOn(*a, 0);
    EXPECT_NEAR(hetero / homo, engine_.params().smtHeteroFactor, 1e-9);
}

TEST_F(ExecTest, SameProfileSharesFootprint)
{
    // Two threads of the same service on one CCX: no extra pressure.
    auto *a = makeCtx("a");
    auto *b = makeCtx("b");
    give(a, small_, 1e9);
    give(b, small_, 1e9);
    engine_.startRun(*a, 0);
    const double solo = engine_.rateOn(*a, 0);
    engine_.startRun(*b, 1); // same CCX, different core
    const double together = engine_.rateOn(*a, 0);
    EXPECT_DOUBLE_EQ(together, solo);
}

TEST_F(ExecTest, DistinctProfilesContendForL3)
{
    auto *a = makeCtx("a");
    auto *b = makeCtx("b");
    give(a, small_, 1e9);
    give(b, big_, 1e9);
    engine_.startRun(*a, 0);
    const double solo = engine_.rateOn(*a, 0);
    engine_.startRun(*b, 1); // same CCX
    const double contended = engine_.rateOn(*a, 0);
    EXPECT_LT(contended, solo);
}

TEST_F(ExecTest, RemoteMemoryIsSlower)
{
    auto *local = makeCtx("local", machine_.nodeOf(0));
    auto *remote = makeCtx("remote", 3); // cpu 0 is on node 0
    give(local, big_, 1e9);
    give(remote, big_, 1e9);
    const double local_rate = engine_.rateOn(*local, 0);
    const double remote_rate = engine_.rateOn(*remote, 0);
    EXPECT_LT(remote_rate, local_rate);
}

TEST_F(ExecTest, FirstTouchSetsHomeNode)
{
    auto *ctx = makeCtx("t", kInvalidNode);
    give(ctx, small_, 1e6);
    engine_.startRun(*ctx, 20); // node 1 on rome128 (ccx 5)
    EXPECT_EQ(ctx->homeNode(), machine_.nodeOf(20));
    sim_.run();
}

TEST_F(ExecTest, CrossCcxMigrationGoesCold)
{
    auto *ctx = makeCtx("t");
    give(ctx, small_, 1e9);
    engine_.startRun(*ctx, 0);
    sim_.runUntil(10 * kMicrosecond);
    engine_.stopRun(*ctx);
    engine_.startRun(*ctx, 8); // different CCX
    EXPECT_EQ(ctx->counters().ccxMigrations, 1u);
    const double cold_rate = engine_.rateOn(*ctx, 8);
    // Run long enough to warm up, then compare.
    sim_.runUntil(sim_.now() + 5 * kMillisecond);
    const double warm_rate = engine_.rateOn(*ctx, 8);
    EXPECT_GT(warm_rate, cold_rate * 1.5);
    EXPECT_GT(ctx->counters().coldNs, 0.0);
}

TEST_F(ExecTest, SameCcxMoveStaysWarm)
{
    auto *ctx = makeCtx("t");
    give(ctx, small_, 1e9);
    engine_.startRun(*ctx, 0);
    sim_.runUntil(10 * kMicrosecond);
    engine_.stopRun(*ctx);
    engine_.startRun(*ctx, 1); // same CCX
    EXPECT_EQ(ctx->counters().ccxMigrations, 0u);
    EXPECT_EQ(ctx->counters().migrations, 1u);
    EXPECT_DOUBLE_EQ(ctx->counters().coldNs, 0.0);
}

TEST_F(ExecTest, WarmPeerSuppressesColdRefill)
{
    auto *peer = makeCtx("peer");
    give(peer, small_, 1e9);
    engine_.startRun(*peer, 8); // ccx 2's first cpu... cpu 8 -> ccx 2
    auto *ctx = makeCtx("t");
    give(ctx, small_, 1e9);
    engine_.startRun(*ctx, 0);
    sim_.runUntil(10 * kMicrosecond);
    engine_.stopRun(*ctx);
    engine_.startRun(*ctx, 9); // peer's CCX, same profile running
    EXPECT_EQ(ctx->counters().ccxMigrations, 1u);
    const double rate = engine_.rateOn(*ctx, 9);
    // No cold surcharge: rate matches the warm shared-footprint rate.
    const double peer_rate = engine_.rateOn(*peer, 8);
    EXPECT_NEAR(rate, peer_rate, peer_rate * 1e-9);
}

TEST_F(ExecTest, FrequencyDropsWithActiveCores)
{
    const double idle_freq = engine_.socketFreqGhz(0);
    EXPECT_DOUBLE_EQ(idle_freq, machine_.params().freq.boostGhz);

    std::vector<ExecContext *> all;
    for (unsigned i = 0; i < 64; ++i) {
        auto *c = makeCtx("t" + std::to_string(i));
        give(c, small_, 1e12);
        engine_.startRun(*c, i);
        all.push_back(c);
    }
    EXPECT_EQ(engine_.activeCores(0), 64u);
    EXPECT_DOUBLE_EQ(engine_.socketFreqGhz(0),
                     machine_.params().freq.allCoreGhz);
    for (auto *c : all)
        engine_.stopRun(*c);
    EXPECT_DOUBLE_EQ(engine_.socketFreqGhz(0),
                     machine_.params().freq.boostGhz);
}

TEST_F(ExecTest, PreemptionBanksProgress)
{
    auto *ctx = makeCtx("t");
    give(ctx, small_, 10e6);
    engine_.startRun(*ctx, 0);
    const double rate = engine_.rateOn(*ctx, 0);
    sim_.runUntil(100 * kMicrosecond);
    engine_.stopRun(*ctx);
    const double expected_retired = rate * 100 * kMicrosecond;
    EXPECT_NEAR(ctx->counters().instructions, expected_retired,
                expected_retired * 0.01);
    EXPECT_NEAR(ctx->remainingInstructions(),
                10e6 - expected_retired, expected_retired * 0.01);
    EXPECT_FALSE(ctx->running());
    EXPECT_TRUE(ctx->hasWork());

    // Resume and finish.
    bool done = false;
    engine_.startRun(*ctx, 0);
    sim_.run();
    EXPECT_NEAR(ctx->counters().instructions, 10e6, 1e4);
    (void)done;
}

TEST_F(ExecTest, ChargeOverheadCountsKernelTime)
{
    PerfCounters c;
    engine_.chargeOverhead(0, 2 * kMicrosecond, &c);
    EXPECT_DOUBLE_EQ(c.busyNs, 2000.0);
    EXPECT_GT(c.kernelInstructions, 0.0);
    EXPECT_DOUBLE_EQ(c.kernelInstructions, c.instructions);
    EXPECT_DOUBLE_EQ(engine_.cpuBusyNs(0), 2000.0);
}

TEST_F(ExecTest, CompletionDetachesAndCallsBack)
{
    auto *ctx = makeCtx("t");
    bool done = false;
    give(ctx, small_, 1e5, &done);
    engine_.startRun(*ctx, 3);
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(ctx->running());
    EXPECT_FALSE(ctx->hasWork());
    EXPECT_EQ(ctx->lastCpu(), 3u);
    EXPECT_EQ(engine_.runningOn(3), nullptr);
}

TEST_F(ExecTest, SmtBusyTimeTracked)
{
    auto *a = makeCtx("a");
    auto *b = makeCtx("b");
    give(a, small_, 1e9);
    give(b, small_, 1e7);
    engine_.startRun(*a, 0);
    engine_.startRun(*b, 64);
    sim_.runUntil(kMillisecond);
    engine_.bankAll();
    EXPECT_GT(a->counters().smtBusyNs, 0.0);
    EXPECT_LE(a->counters().smtBusyNs, a->counters().busyNs);
}

TEST_F(ExecTest, DeathOnDoubleStart)
{
    auto *ctx = makeCtx("t");
    give(ctx, small_, 1e6);
    engine_.startRun(*ctx, 0);
    EXPECT_DEATH(engine_.startRun(*ctx, 1), "already-running");
}

TEST_F(ExecTest, DeathOnBusyCpu)
{
    auto *a = makeCtx("a");
    auto *b = makeCtx("b");
    give(a, small_, 1e6);
    give(b, small_, 1e6);
    engine_.startRun(*a, 0);
    EXPECT_DEATH(engine_.startRun(*b, 0), "busy cpu");
}

TEST_F(ExecTest, DeathOnSetWorkTwice)
{
    auto *ctx = makeCtx("t");
    give(ctx, small_, 1e6);
    EXPECT_DEATH(give(ctx, small_, 1e6), "pending work");
}

/**
 * Property: instructions are conserved across arbitrary preempt/move
 * schedules - every context ends with exactly its submitted budget.
 */
class ExecConservation : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ExecConservation, InstructionsConserved)
{
    sim::Simulation sim;
    topo::Machine machine(topo::small8());
    cpu::ExecEngine engine(sim, machine);
    Rng rng(GetParam());

    WorkProfile p;
    p.name = "prop";
    p.ipcBase = 1.2;
    p.l3Apki = 6.0;
    p.wssBytes = 6.0 * 1024 * 1024;

    constexpr unsigned kThreads = 6;
    const double budget = 5e6;
    std::vector<std::unique_ptr<ExecContext>> ctxs;
    unsigned completed = 0;
    for (unsigned i = 0; i < kThreads; ++i) {
        ctxs.push_back(std::make_unique<ExecContext>(
            "p" + std::to_string(i), kInvalidNode));
        engine.setWork(*ctxs[i], p, budget, [&completed] { ++completed; });
    }

    // Random schedule churn: start/stop contexts on random free CPUs.
    for (int step = 0; step < 400 && completed < kThreads; ++step) {
        sim.runUntil(sim.now() + rng.uniformInt(1, 50) * kMicrosecond);
        for (auto &ctx : ctxs) {
            if (!ctx->hasWork())
                continue;
            if (ctx->running()) {
                if (rng.chance(0.4))
                    engine.stopRun(*ctx);
            } else if (rng.chance(0.6)) {
                // Find a free cpu.
                for (CpuId c = 0; c < machine.numCpus(); ++c) {
                    if (!engine.runningOn(c)) {
                        engine.startRun(*ctx, c);
                        break;
                    }
                }
            }
        }
    }
    // Drain: run everything to completion.
    for (auto &ctx : ctxs) {
        if (ctx->hasWork() && !ctx->running()) {
            for (CpuId c = 0; c < machine.numCpus(); ++c) {
                if (!engine.runningOn(c)) {
                    engine.startRun(*ctx, c);
                    break;
                }
            }
        }
    }
    sim.run();
    EXPECT_EQ(completed, kThreads);
    for (auto &ctx : ctxs) {
        EXPECT_NEAR(ctx->counters().instructions, budget, budget * 0.001)
            << ctx->name();
        EXPECT_FALSE(ctx->running());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecConservation,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

/**
 * Property: adding load never speeds anyone up - starting another
 * context on the same core/CCX/socket can only lower (or keep) an
 * existing context's retire rate.
 */
class ExecMonotonicity : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ExecMonotonicity, NeighborsNeverHelp)
{
    sim::Simulation sim;
    topo::Machine machine(topo::rome128());
    cpu::ExecEngine engine(sim, machine);
    Rng rng(GetParam());

    // A palette of distinct profiles.
    std::vector<WorkProfile> profiles(4);
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        profiles[i].name = "mono" + std::to_string(i);
        profiles[i].ipcBase = rng.uniformReal(0.6, 2.0);
        profiles[i].l3Apki = rng.uniformReal(1.0, 15.0);
        profiles[i].wssBytes = rng.uniformReal(1.0, 30.0) * 1024 * 1024;
        profiles[i].smtYield = rng.uniformReal(0.55, 0.8);
    }

    ExecContext subject("subject", 0);
    engine.setWork(subject, profiles[0], 1e12, [] {});
    engine.startRun(subject, 0);

    std::vector<std::unique_ptr<ExecContext>> others;
    double prev_rate = engine.rateOn(subject, 0);
    for (int step = 0; step < 20; ++step) {
        // Start a random other context on a random free CPU.
        const CpuId cpu =
            static_cast<CpuId>(rng.uniformInt(1, machine.numCpus() - 1));
        if (engine.runningOn(cpu))
            continue;
        others.push_back(std::make_unique<ExecContext>(
            "n" + std::to_string(step), kInvalidNode));
        engine.setWork(*others.back(),
                       profiles[rng.index(profiles.size())], 1e12,
                       [] {});
        engine.startRun(*others.back(), cpu);
        const double rate = engine.rateOn(subject, 0);
        EXPECT_LE(rate, prev_rate * (1.0 + 1e-9))
            << "adding load on cpu " << cpu << " raised the rate";
        prev_rate = rate;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecMonotonicity,
                         ::testing::Values(10, 20, 30, 40));

} // namespace
} // namespace microscale::cpu
