/**
 * @file
 * Tests for the socket frequency (boost) curve.
 */

#include <gtest/gtest.h>

#include "topo/params.hh"
#include "topo/presets.hh"

namespace microscale::topo
{
namespace
{

TEST(FreqCurve, IdleGivesBoost)
{
    const FreqCurve f = rome128().freq;
    EXPECT_DOUBLE_EQ(f.freqGhz(0, 64), f.boostGhz);
}

TEST(FreqCurve, FewCoresGiveFullBoost)
{
    const FreqCurve f = rome128().freq;
    for (unsigned n : {1u, 4u, 8u})
        EXPECT_DOUBLE_EQ(f.freqGhz(n, 64), f.boostGhz) << n;
}

TEST(FreqCurve, AllCoresGiveBaseline)
{
    const FreqCurve f = rome128().freq;
    EXPECT_DOUBLE_EQ(f.freqGhz(64, 64), f.allCoreGhz);
    EXPECT_DOUBLE_EQ(f.freqGhz(63, 64), f.allCoreGhz); // quantized up
}

TEST(FreqCurve, MonotonicallyNonIncreasing)
{
    const FreqCurve f = rome128().freq;
    double prev = f.freqGhz(1, 64);
    for (unsigned n = 2; n <= 64; ++n) {
        const double cur = f.freqGhz(n, 64);
        EXPECT_LE(cur, prev) << "at " << n << " cores";
        prev = cur;
    }
}

TEST(FreqCurve, QuantizedWithinBucket)
{
    const FreqCurve f = rome128().freq; // bucket of 8
    EXPECT_DOUBLE_EQ(f.freqGhz(9, 64), f.freqGhz(16, 64));
    EXPECT_DOUBLE_EQ(f.freqGhz(17, 64), f.freqGhz(24, 64));
    EXPECT_NE(f.freqGhz(16, 64), f.freqGhz(17, 64));
}

TEST(FreqCurve, BucketOf)
{
    FreqCurve f;
    f.bucketCores = 8;
    EXPECT_EQ(f.bucketOf(0), 0u);
    EXPECT_EQ(f.bucketOf(1), 1u);
    EXPECT_EQ(f.bucketOf(8), 1u);
    EXPECT_EQ(f.bucketOf(9), 2u);
}

TEST(FreqCurve, BetweenBoostAndBase)
{
    const FreqCurve f = rome128().freq;
    for (unsigned n = 1; n <= 64; ++n) {
        const double ghz = f.freqGhz(n, 64);
        EXPECT_GE(ghz, f.allCoreGhz);
        EXPECT_LE(ghz, f.boostGhz);
    }
}

TEST(MachineParams, ValidateAcceptsAllPresets)
{
    for (const auto &name : presetNames())
        presetByName(name).validate(); // must not exit
    SUCCEED();
}

TEST(MachineParamsDeathTest, RejectsTooManyCpus)
{
    MachineParams p = rome128();
    p.sockets = 8; // 1024 logical CPUs > kMaxCpus
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1), "exceeds");
}

TEST(MachineParamsDeathTest, RejectsInvertedFrequencies)
{
    MachineParams p = rome128();
    p.freq.boostGhz = 1.0; // below allCore
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "boost frequency");
}

} // namespace
} // namespace microscale::topo
