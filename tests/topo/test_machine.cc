/**
 * @file
 * Tests for the machine topology model, parameterized over every
 * preset to check structural invariants.
 */

#include <gtest/gtest.h>

#include <string>

#include "topo/machine.hh"
#include "topo/presets.hh"

namespace microscale::topo
{
namespace
{

TEST(Machine, Rome128Shape)
{
    Machine m(rome128());
    EXPECT_EQ(m.numCpus(), 128u);
    EXPECT_EQ(m.numCores(), 64u);
    EXPECT_EQ(m.numCcxs(), 16u);
    EXPECT_EQ(m.numNodes(), 4u);
    EXPECT_EQ(m.numSockets(), 1u);
    EXPECT_EQ(m.threadsPerCore(), 2u);
}

TEST(Machine, LinuxStyleSmtNumbering)
{
    Machine m(rome128());
    // CPU c and c+64 share a core.
    EXPECT_EQ(m.siblingOf(0), 64u);
    EXPECT_EQ(m.siblingOf(64), 0u);
    EXPECT_EQ(m.siblingOf(63), 127u);
    EXPECT_EQ(m.coreOf(5), m.coreOf(69));
    EXPECT_TRUE(m.isPrimaryThread(5));
    EXPECT_FALSE(m.isPrimaryThread(69));
}

TEST(Machine, SmtOffHasNoSibling)
{
    Machine m(rome64smtOff());
    EXPECT_EQ(m.numCpus(), 64u);
    EXPECT_EQ(m.siblingOf(0), kInvalidCpu);
}

TEST(Machine, CcxAndNodeStructure)
{
    Machine m(rome128());
    // Cores 0-3 form CCX 0; cores 4-7 form CCX 1.
    EXPECT_EQ(m.ccxOf(0), 0u);
    EXPECT_EQ(m.ccxOf(3), 0u);
    EXPECT_EQ(m.ccxOf(4), 1u);
    // The SMT sibling is in the same CCX.
    EXPECT_EQ(m.ccxOf(64), 0u);
    // 4 CCXs per node.
    EXPECT_EQ(m.nodeOf(0), 0u);
    EXPECT_EQ(m.nodeOf(15), 0u);
    EXPECT_EQ(m.nodeOf(16), 1u);
    EXPECT_EQ(m.nodeOfCcx(3), 0u);
    EXPECT_EQ(m.nodeOfCcx(4), 1u);
    EXPECT_EQ(m.ccxsOfNode(1), (std::vector<CcxId>{4, 5, 6, 7}));
}

TEST(Machine, CpusOfCcxContainsBothThreads)
{
    Machine m(rome128());
    const CpuMask ccx0 = m.cpusOfCcx(0);
    EXPECT_EQ(ccx0.count(), 8u);
    EXPECT_TRUE(ccx0.test(0));
    EXPECT_TRUE(ccx0.test(3));
    EXPECT_TRUE(ccx0.test(64));
    EXPECT_TRUE(ccx0.test(67));
    EXPECT_FALSE(ccx0.test(4));
}

TEST(Machine, MemLatencyMatrix)
{
    const MachineParams p = rome128();
    Machine m(p);
    EXPECT_DOUBLE_EQ(m.memLatencyNs(0, 0), p.mem.localLatencyNs);
    EXPECT_DOUBLE_EQ(m.memLatencyNs(0, 1),
                     p.mem.localLatencyNs * p.mem.intraSocketFactor);
    EXPECT_DOUBLE_EQ(m.memLatencyNs(1, 0), m.memLatencyNs(0, 1));
}

TEST(Machine, CrossSocketLatency)
{
    const MachineParams p = rome128x2();
    Machine m(p);
    EXPECT_EQ(m.numNodes(), 8u);
    EXPECT_DOUBLE_EQ(m.memLatencyNs(0, 7),
                     p.mem.localLatencyNs * p.mem.interSocketFactor);
    EXPECT_DOUBLE_EQ(m.memLatencyNs(0, 3),
                     p.mem.localLatencyNs * p.mem.intraSocketFactor);
}

TEST(Machine, DescribeMentionsName)
{
    Machine m(small8());
    EXPECT_NE(m.describe().find("small8"), std::string::npos);
}

TEST(MachineDeathTest, OutOfRangeLookupsPanic)
{
    Machine m(small8());
    EXPECT_DEATH(m.coreOf(m.numCpus()), "out of range");
    EXPECT_DEATH(m.cpusOfCcx(m.numCcxs()), "out of range");
    EXPECT_DEATH(m.memLatencyNs(9, 0), "out of range");
}

TEST(MachineDeathTest, InvalidParamsFatal)
{
    MachineParams p = small8();
    p.threadsPerCore = 3;
    EXPECT_EXIT(Machine{p}, ::testing::ExitedWithCode(1),
                "threadsPerCore");
}

TEST(Presets, LookupByName)
{
    for (const auto &name : presetNames()) {
        const MachineParams p = presetByName(name);
        EXPECT_EQ(p.name, name);
    }
}

TEST(PresetsDeathTest, UnknownNameFatal)
{
    EXPECT_EXIT(presetByName("not-a-machine"),
                ::testing::ExitedWithCode(1), "unknown machine preset");
}

/** Structural invariants that must hold for every preset. */
class PresetInvariants : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PresetInvariants, PartitionsAreConsistent)
{
    Machine m(presetByName(GetParam()));

    // Every CPU belongs to exactly the structures its ids claim.
    CpuMask all_from_ccxs;
    for (CcxId x = 0; x < m.numCcxs(); ++x) {
        const CpuMask mask = m.cpusOfCcx(x);
        EXPECT_EQ(mask.count(), m.coresPerCcx() * m.threadsPerCore());
        EXPECT_FALSE(all_from_ccxs.intersects(mask)); // disjoint
        all_from_ccxs |= mask;
        for (CpuId c : mask)
            EXPECT_EQ(m.ccxOf(c), x);
    }
    EXPECT_EQ(all_from_ccxs, m.allCpus());

    CpuMask all_from_nodes;
    for (NodeId n = 0; n < m.numNodes(); ++n) {
        const CpuMask mask = m.cpusOfNode(n);
        EXPECT_FALSE(all_from_nodes.intersects(mask));
        all_from_nodes |= mask;
        for (CpuId c : mask)
            EXPECT_EQ(m.nodeOf(c), n);
    }
    EXPECT_EQ(all_from_nodes, m.allCpus());

    CpuMask all_from_sockets;
    for (SocketId s = 0; s < m.numSockets(); ++s)
        all_from_sockets |= m.cpusOfSocket(s);
    EXPECT_EQ(all_from_sockets, m.allCpus());

    // Sibling relation is an involution within the same core.
    for (CpuId c = 0; c < m.numCpus(); ++c) {
        const CpuId sib = m.siblingOf(c);
        if (m.threadsPerCore() == 1) {
            EXPECT_EQ(sib, kInvalidCpu);
        } else {
            EXPECT_NE(sib, c);
            EXPECT_EQ(m.siblingOf(sib), c);
            EXPECT_EQ(m.coreOf(sib), m.coreOf(c));
        }
    }

    // Primary threads cover each core exactly once.
    EXPECT_EQ(m.primaryThreads().count(), m.numCores());

    // Memory latency is symmetric and minimal on the diagonal.
    for (NodeId a = 0; a < m.numNodes(); ++a) {
        for (NodeId b = 0; b < m.numNodes(); ++b) {
            EXPECT_DOUBLE_EQ(m.memLatencyNs(a, b), m.memLatencyNs(b, a));
            EXPECT_GE(m.memLatencyNs(a, b), m.memLatencyNs(a, a));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetInvariants,
                         ::testing::ValuesIn(presetNames()));

} // namespace
} // namespace microscale::topo
