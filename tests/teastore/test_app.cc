/**
 * @file
 * Tests for the assembled TeaStore application model.
 */

#include <gtest/gtest.h>

#include <set>

#include "net/network.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "teastore/app.hh"
#include "teastore/profiles.hh"
#include "topo/presets.hh"

namespace microscale::teastore
{
namespace
{

AppParams
tinyApp()
{
    AppParams p;
    p.store.categories = 4;
    p.store.productsPerCategory = 12;
    p.store.users = 10;
    p.webui = {1, 4};
    p.auth = {1, 4};
    p.persistence = {1, 4};
    p.recommender = {1, 2};
    p.image = {1, 4};
    p.registry = {1, 1};
    p.heartbeats = false;
    return p;
}

class AppTest : public ::testing::Test
{
  protected:
    AppTest()
        : machine_(topo::small8()),
          engine_(sim_, machine_),
          kernel_(sim_, machine_, engine_, os::SchedParams{}, 1),
          network_(sim_, net::NetParams{}, 1),
          mesh_(kernel_, network_, svc::RpcCostParams{}, 1),
          app_(mesh_, tinyApp(), 1),
          rng_(99, "test")
    {
        kernel_.start();
    }

    /** Issue one op and run to completion; returns e2e latency. */
    Tick
    runOp(OpType op)
    {
        bool got = false;
        const Tick start = sim_.now();
        Tick end = 0;
        svc::Payload req = app_.sampleRequest(op, rng_);
        mesh_.callExternal(names::kWebui, opName(op), req,
                           [&](const svc::Payload &) {
                               got = true;
                               end = sim_.now();
                           });
        sim_.run();
        EXPECT_TRUE(got) << opName(op);
        return end - start;
    }

    sim::Simulation sim_;
    topo::Machine machine_;
    cpu::ExecEngine engine_;
    os::Kernel kernel_;
    net::Network network_;
    svc::Mesh mesh_;
    App app_;
    Rng rng_;
};

TEST_F(AppTest, RegistersSixServices)
{
    EXPECT_EQ(app_.services().size(), 6u);
    EXPECT_TRUE(mesh_.hasService(names::kWebui));
    EXPECT_TRUE(mesh_.hasService(names::kAuth));
    EXPECT_TRUE(mesh_.hasService(names::kPersistence));
    EXPECT_TRUE(mesh_.hasService(names::kRecommender));
    EXPECT_TRUE(mesh_.hasService(names::kImage));
    EXPECT_TRUE(mesh_.hasService(names::kRegistry));
}

TEST_F(AppTest, OpNamesRoundTrip)
{
    std::set<std::string> names;
    for (OpType op : allOps())
        names.insert(opName(op));
    EXPECT_EQ(names.size(), kNumOps);
}

TEST_F(AppTest, HomeTouchesPersistenceAndImage)
{
    runOp(OpType::Home);
    EXPECT_EQ(app_.persistence().requestsProcessed(), 1u);
    EXPECT_EQ(app_.image().requestsProcessed(), 1u);
    EXPECT_EQ(app_.webui().requestsProcessed(), 1u);
}

TEST_F(AppTest, LoginGoesThroughAuthAndPersistence)
{
    runOp(OpType::Login);
    EXPECT_EQ(app_.auth().requestsProcessed(), 1u);
    EXPECT_EQ(app_.persistence().requestsProcessed(), 1u);
    EXPECT_EQ(app_.auth().opStats().at("login").requests, 1u);
}

TEST_F(AppTest, ProductFansOutToFourServices)
{
    runOp(OpType::Product);
    EXPECT_EQ(app_.auth().requestsProcessed(), 1u);
    EXPECT_EQ(app_.persistence().requestsProcessed(), 1u);
    EXPECT_EQ(app_.recommender().requestsProcessed(), 1u);
    EXPECT_EQ(app_.image().requestsProcessed(), 2u); // full + previews
}

TEST_F(AppTest, CheckoutWritesAnOrder)
{
    EXPECT_EQ(app_.store().orderCount(), 0u);
    runOp(OpType::Checkout);
    EXPECT_EQ(app_.store().orderCount(), 1u);
}

TEST_F(AppTest, AllOpsComplete)
{
    for (OpType op : allOps()) {
        const Tick lat = runOp(op);
        EXPECT_GT(lat, 0u) << opName(op);
        // Sub-100ms on an idle machine.
        EXPECT_LT(lat, 100 * kMillisecond) << opName(op);
    }
}

TEST_F(AppTest, CategoryIsHeavierThanLoginForImages)
{
    runOp(OpType::Category);
    const auto img = app_.image().aggregateCounters().instructions;
    EXPECT_GT(img, 0.0);
    // 20 previews dominate a single auth hash.
    EXPECT_GT(img, app_.auth().aggregateCounters().instructions);
}

TEST_F(AppTest, SampleRequestProducesValidIds)
{
    for (int i = 0; i < 50; ++i) {
        const svc::Payload cat =
            app_.sampleRequest(OpType::Category, rng_);
        EXPECT_GE(cat.arg0, 1u);
        EXPECT_LE(cat.arg0, app_.store().categoryCount());
        const svc::Payload prod =
            app_.sampleRequest(OpType::Product, rng_);
        EXPECT_GE(prod.arg0, 1u);
        EXPECT_LE(prod.arg0, app_.store().productCount());
        const svc::Payload login =
            app_.sampleRequest(OpType::Login, rng_);
        EXPECT_GE(login.arg0, 1u);
        EXPECT_LE(login.arg0, app_.store().userCount());
    }
}

TEST_F(AppTest, HeartbeatsReachRegistry)
{
    AppParams p = tinyApp();
    p.heartbeats = true;
    p.heartbeatPeriod = 100 * kMillisecond;
    // Fresh world with heartbeats on.
    sim::Simulation sim;
    topo::Machine machine(topo::small8());
    cpu::ExecEngine engine(sim, machine);
    os::Kernel kernel(sim, machine, engine, os::SchedParams{}, 1);
    net::Network network(sim, net::NetParams{}, 1);
    svc::Mesh mesh(kernel, network, svc::RpcCostParams{}, 1);
    App app(mesh, p, 1);
    kernel.start();
    app.start();
    sim.runUntil(kSecond);
    // 5 senders x ~9-10 beats each.
    EXPECT_GT(app.registry().requestsProcessed(), 30u);
    app.stop();
    const auto count = app.registry().requestsProcessed();
    sim.runUntil(2 * kSecond);
    EXPECT_EQ(app.registry().requestsProcessed(), count);
}

TEST_F(AppTest, WorkScaleIncreasesCpuDemand)
{
    auto run_with_scale = [](double scale) {
        sim::Simulation sim;
        topo::Machine machine(topo::small8());
        cpu::ExecEngine engine(sim, machine);
        os::Kernel kernel(sim, machine, engine, os::SchedParams{}, 1);
        net::Network network(sim, net::NetParams{}, 1);
        svc::Mesh mesh(kernel, network, svc::RpcCostParams{}, 1);
        AppParams p = tinyApp();
        p.workScale = scale;
        App app(mesh, p, 1);
        kernel.start();
        Rng rng(5, "x");
        bool got = false;
        mesh.callExternal(names::kWebui, "home",
                          app.sampleRequest(OpType::Home, rng),
                          [&](const svc::Payload &) { got = true; });
        sim.run();
        EXPECT_TRUE(got);
        double total = 0.0;
        for (auto *s : app.services())
            total += s->aggregateCounters().instructions;
        return total;
    };
    EXPECT_GT(run_with_scale(2.0), run_with_scale(1.0) * 1.3);
}

TEST(Profiles, MicroserviceCharacteristics)
{
    // The paper's contrast: front-end services have low IPC and big
    // instruction footprints; auth (crypto) is the compute outlier.
    EXPECT_LT(webuiProfile().ipcBase, 1.0);
    EXPECT_GT(authProfile().ipcBase, 1.5);
    EXPECT_GT(webuiProfile().icacheMpki, 10.0);
    EXPECT_LT(authProfile().icacheMpki, 5.0);
    for (const auto *p :
         {&webuiProfile(), &authProfile(), &persistenceProfile(),
          &recommenderProfile(), &imageProfile(), &registryProfile()}) {
        p->validate();
    }
    // Accessors return stable storage.
    EXPECT_EQ(&webuiProfile(), &webuiProfile());
}

} // namespace
} // namespace microscale::teastore
