/**
 * @file
 * Second wave of application-model tests: database-driven costs,
 * payload shapes, profile op chains, and placement interaction.
 */

#include <gtest/gtest.h>

#include "net/network.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "teastore/app.hh"
#include "topo/presets.hh"

namespace microscale::teastore
{
namespace
{

/** A fresh world around an App with the given store size. */
struct World
{
    sim::Simulation sim;
    topo::Machine machine{topo::small8()};
    cpu::ExecEngine engine{sim, machine};
    os::Kernel kernel{sim, machine, engine, os::SchedParams{}, 1};
    net::Network network{sim, net::NetParams{}, 1};
    svc::Mesh mesh{kernel, network, svc::RpcCostParams{}, 1};
    App app;

    explicit World(AppParams p) : app(mesh, p, 1) { kernel.start(); }

    /** Run one external op to completion; returns true on response. */
    bool
    runOp(const char *op, svc::Payload req)
    {
        bool got = false;
        mesh.callExternal(names::kWebui, op, req,
                          [&](const svc::Payload &) { got = true; });
        sim.run();
        return got;
    }
};

AppParams
tiny(unsigned products_per_category = 10)
{
    AppParams p;
    p.store.categories = 4;
    p.store.productsPerCategory = products_per_category;
    p.store.users = 10;
    p.webui = {1, 4};
    p.auth = {1, 4};
    p.persistence = {1, 4};
    p.recommender = {1, 2};
    p.image = {1, 4};
    p.registry = {1, 1};
    p.heartbeats = false;
    return p;
}

TEST(App2, BiggerPagesCostMorePersistenceWork)
{
    // Category page cost scales with rows touched.
    AppParams small_catalog = tiny(10);
    AppParams big_catalog = tiny(100); // full 20-product pages

    World a(small_catalog);
    svc::Payload req;
    req.arg0 = 1;
    req.arg1 = 0;
    ASSERT_TRUE(a.runOp("category", req));
    const double small_work =
        a.app.persistence().aggregateCounters().instructions;

    World b(big_catalog);
    ASSERT_TRUE(b.runOp("category", req));
    const double big_work =
        b.app.persistence().aggregateCounters().instructions;

    EXPECT_GT(big_work, small_work * 1.2);
}

TEST(App2, ImageWorkScalesWithPreviewCount)
{
    // home fetches 4 previews; category fetches a full page (10 here).
    World a(tiny());
    ASSERT_TRUE(a.runOp("home", svc::Payload{}));
    const double home_img =
        a.app.image().aggregateCounters().instructions;

    World b(tiny());
    svc::Payload req;
    req.arg0 = 1;
    req.arg1 = 0;
    ASSERT_TRUE(b.runOp("category", req));
    const double cat_img =
        b.app.image().aggregateCounters().instructions;
    EXPECT_GT(cat_img, home_img * 1.5);
}

TEST(App2, CacheHitRatioControlsImageWork)
{
    AppParams hot = tiny();
    hot.imageCacheHitRatio = 1.0;
    AppParams cold = tiny();
    cold.imageCacheHitRatio = 0.0;

    svc::Payload req;
    req.arg0 = 1;
    req.arg1 = 0;
    World a(hot);
    ASSERT_TRUE(a.runOp("category", req));
    World b(cold);
    ASSERT_TRUE(b.runOp("category", req));
    EXPECT_GT(b.app.image().aggregateCounters().instructions,
              a.app.image().aggregateCounters().instructions * 3.0);
}

TEST(App2, ProfileOpQueriesUserAndOrders)
{
    World w(tiny());
    svc::Payload req;
    req.arg0 = 3; // user
    ASSERT_TRUE(w.runOp("profile", req));
    // user + ordersOfUser = two persistence requests.
    EXPECT_EQ(w.app.persistence().requestsProcessed(), 2u);
    EXPECT_EQ(
        w.app.persistence().opStats().at("ordersOfUser").requests, 1u);
}

TEST(App2, CheckoutThenProfileSeesOrders)
{
    World w(tiny());
    svc::Payload req;
    req.arg0 = 5; // user
    ASSERT_TRUE(w.runOp("checkout", req));
    ASSERT_TRUE(w.runOp("checkout", req));
    EXPECT_EQ(w.app.store().orderCount(), 2u);
    db::QueryCost cost;
    EXPECT_EQ(w.app.store().ordersOfUser(5, 10, cost).size(), 2u);
}

TEST(App2, UnknownProductIsHandledGracefully)
{
    World w(tiny());
    svc::Payload req;
    req.arg0 = 999999; // not in the catalog
    req.arg1 = 1;
    EXPECT_TRUE(w.runOp("product", req));
}

TEST(App2, PinningAppServicesKeepsThemInPlace)
{
    World w(tiny());
    const CpuMask ccx1 = w.machine.cpusOfCcx(1);
    for (unsigned r = 0; r < w.app.image().replicaCount(); ++r)
        w.app.image().setReplicaPlacement(r, ccx1, 0);

    svc::Payload req;
    req.arg0 = 1;
    req.arg1 = 0;
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(w.runOp("category", req));
    for (const svc::Worker &worker : w.app.image().workers()) {
        const CpuId last = worker.thread->ec().lastCpu();
        if (last != kInvalidCpu)
            EXPECT_TRUE(ccx1.test(last));
    }
}

TEST(App2, WebuiResponseSizesDifferByOp)
{
    World w(tiny());
    std::uint32_t home_bytes = 0, category_bytes = 0;
    w.mesh.callExternal(names::kWebui, "home", svc::Payload{},
                        [&](const svc::Payload &r) {
                            home_bytes = r.bytes;
                        });
    w.sim.run();
    svc::Payload req;
    req.arg0 = 1;
    w.mesh.callExternal(names::kWebui, "category", req,
                        [&](const svc::Payload &r) {
                            category_bytes = r.bytes;
                        });
    w.sim.run();
    EXPECT_GT(home_bytes, 0u);
    EXPECT_GT(category_bytes, home_bytes);
}

TEST(App2, DeterministicAcrossIdenticalWorlds)
{
    auto run = [] {
        World w(tiny());
        svc::Payload req;
        req.arg0 = 2;
        req.arg1 = 0;
        w.runOp("category", req);
        return w.sim.now();
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace microscale::teastore
