/**
 * @file
 * Tests for the OS scheduler: dispatch, wake placement, preemption,
 * affinity enforcement, stealing and fairness.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/random.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "topo/presets.hh"

namespace microscale::os
{
namespace
{

class KernelTest : public ::testing::Test
{
  protected:
    KernelTest()
        : machine_(topo::small8()),
          engine_(sim_, machine_),
          kernel_(sim_, machine_, engine_, SchedParams{}, 1)
    {
        profile_.name = "test-work";
        profile_.ipcBase = 1.0;
        profile_.branchMpki = 0.0;
        profile_.icacheMpki = 0.0;
        profile_.l3Apki = 0.0;
        profile_.wssBytes = 1024 * 1024;
    }

    /** ~1ms of work at 2.5-3 GHz. */
    static constexpr double kChunk = 3e6;

    sim::Simulation sim_;
    topo::Machine machine_;
    cpu::ExecEngine engine_;
    Kernel kernel_;
    cpu::WorkProfile profile_;
};

TEST_F(KernelTest, ThreadStartsBlocked)
{
    Thread *t = kernel_.createThread("t", machine_.allCpus());
    EXPECT_EQ(t->state(), Thread::State::Blocked);
    EXPECT_EQ(t->cpuTimeNs(), 0.0);
}

TEST_F(KernelTest, RunExecutesAndBlocksAgain)
{
    Thread *t = kernel_.createThread("t", machine_.allCpus());
    bool done = false;
    t->run(profile_, kChunk, [&] { done = true; });
    EXPECT_EQ(t->state(), Thread::State::Running);
    sim_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(t->state(), Thread::State::Blocked);
    EXPECT_GT(t->cpuTimeNs(), 0.0);
    EXPECT_EQ(kernel_.stats().wakeups, 1u);
}

TEST_F(KernelTest, CallbackCanChainWork)
{
    Thread *t = kernel_.createThread("t", machine_.allCpus());
    int rounds = 0;
    std::function<void()> again = [&] {
        if (++rounds < 5)
            t->run(profile_, kChunk, again);
    };
    t->run(profile_, kChunk, again);
    sim_.run();
    EXPECT_EQ(rounds, 5);
}

TEST_F(KernelTest, AffinityIsRespected)
{
    Thread *t = kernel_.createThread("t", CpuMask::single(2));
    kernel_.start();
    int rounds = 0;
    std::function<void()> again = [&] {
        EXPECT_EQ(t->ec().lastCpu(), 2u);
        if (++rounds < 10)
            t->run(profile_, kChunk, again);
    };
    t->run(profile_, kChunk, again);
    sim_.run();
    EXPECT_EQ(rounds, 10);
    EXPECT_EQ(t->ec().counters().migrations, 0u);
}

TEST_F(KernelTest, WakePrefersLastCpu)
{
    Thread *t = kernel_.createThread("t", machine_.allCpus());
    t->run(profile_, kChunk, [] {});
    sim_.run();
    const CpuId first = t->ec().lastCpu();
    t->run(profile_, kChunk, [] {});
    sim_.run();
    EXPECT_EQ(t->ec().lastCpu(), first);
}

TEST_F(KernelTest, TwoThreadsShareOnePinnedCpu)
{
    kernel_.start();
    Thread *a = kernel_.createThread("a", CpuMask::single(0));
    Thread *b = kernel_.createThread("b", CpuMask::single(0));
    bool da = false, db = false;
    // Long enough that preemption must interleave them (several ms).
    a->run(profile_, 12 * kChunk, [&] { da = true; });
    b->run(profile_, 12 * kChunk, [&] { db = true; });
    sim_.run();
    EXPECT_TRUE(da);
    EXPECT_TRUE(db);
    EXPECT_GT(kernel_.stats().preemptions, 0u);
    EXPECT_GT(kernel_.stats().contextSwitches, 0u);
    // Fairness: preemption interleaves, so CPU time is comparable.
    EXPECT_NEAR(a->cpuTimeNs() / b->cpuTimeNs(), 1.0, 0.5);
}

TEST_F(KernelTest, ParallelThreadsUseDifferentCpus)
{
    kernel_.start();
    std::vector<Thread *> threads;
    for (int i = 0; i < 4; ++i) {
        threads.push_back(kernel_.createThread("t" + std::to_string(i),
                                               machine_.allCpus()));
    }
    for (auto *t : threads)
        t->run(profile_, kChunk, [] {});
    // All should be dispatched to distinct CPUs immediately.
    sim_.runUntil(kernel_.params().switchCost + 1);
    std::vector<bool> used(machine_.numCpus(), false);
    unsigned running = 0;
    for (CpuId c = 0; c < machine_.numCpus(); ++c) {
        if (engine_.runningOn(c)) {
            ++running;
            used[c] = true;
        }
    }
    EXPECT_EQ(running, 4u);
    sim_.run();
}

TEST_F(KernelTest, NewIdleStealRebalances)
{
    kernel_.start();
    Thread *a = kernel_.createThread("a", CpuMask::single(0));
    Thread *b = kernel_.createThread("b", CpuMask::single(1));
    Thread *c = kernel_.createThread("c", CpuMask::range(0, 1));

    a->run(profile_, 30 * kChunk, [] {});
    b->run(profile_, kChunk / 2, [] {});
    bool c_done = false;
    c->run(profile_, 2 * kChunk, [&] { c_done = true; });
    // c lands behind a or b; when b finishes, cpu 1 must steal c
    // rather than idle while c waits behind a.
    sim_.run();
    EXPECT_TRUE(c_done);
    EXPECT_GT(kernel_.stats().newIdlePulls + kernel_.stats().balancePulls,
              0u);
}

TEST_F(KernelTest, SetAffinityMigratesRunningThread)
{
    kernel_.start();
    Thread *t = kernel_.createThread("t", CpuMask::single(0));
    t->run(profile_, 30 * kChunk, [] {});
    sim_.runUntil(kMillisecond);
    EXPECT_EQ(t->ec().cpu(), 0u);
    t->setAffinity(CpuMask::single(3));
    sim_.runUntil(2 * kMillisecond);
    EXPECT_EQ(t->ec().cpu(), 3u);
    sim_.run();
    EXPECT_EQ(t->ec().lastCpu(), 3u);
}

TEST_F(KernelTest, SwitchCostChargesKernelWork)
{
    Thread *a = kernel_.createThread("a", CpuMask::single(0));
    bool done = false;
    a->run(profile_, kChunk, [&] { done = true; });
    sim_.run();
    EXPECT_TRUE(done);
    // The initial dispatch switches from idle: cost charged.
    EXPECT_GT(a->ec().counters().kernelInstructions, 0.0);
}

TEST_F(KernelTest, QueueDepthVisible)
{
    Thread *a = kernel_.createThread("a", CpuMask::single(0));
    Thread *b = kernel_.createThread("b", CpuMask::single(0));
    a->run(profile_, 10 * kChunk, [] {});
    b->run(profile_, 10 * kChunk, [] {});
    EXPECT_EQ(kernel_.queueDepth(0), 1u);
    sim_.run();
    EXPECT_EQ(kernel_.queueDepth(0), 0u);
}

TEST_F(KernelTest, StatsCountWakeups)
{
    Thread *t = kernel_.createThread("t", machine_.allCpus());
    for (int i = 0; i < 3; ++i) {
        t->run(profile_, kChunk, [] {});
        sim_.run();
    }
    EXPECT_EQ(kernel_.stats().wakeups, 3u);
    EXPECT_EQ(t->ec().counters().wakeups, 3u);
}

TEST_F(KernelTest, DeathOnRunWhileRunning)
{
    Thread *t = kernel_.createThread("t", machine_.allCpus());
    t->run(profile_, kChunk, [] {});
    EXPECT_DEATH(t->run(profile_, kChunk, [] {}), "non-blocked");
}

TEST_F(KernelTest, DeathOnEmptyAffinity)
{
    EXPECT_EXIT(kernel_.createThread("bad", CpuMask()),
                ::testing::ExitedWithCode(1), "affinity");
}

TEST_F(KernelTest, DeathOnBadHomeNode)
{
    EXPECT_EXIT(kernel_.createThread("bad", machine_.allCpus(), 99),
                ::testing::ExitedWithCode(1), "home node");
}

/**
 * Property: random workloads with random affinities all complete, and
 * every thread only ever runs inside its affinity mask.
 */
class KernelProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(KernelProperty, AllWorkCompletesWithinAffinity)
{
    sim::Simulation sim;
    topo::Machine machine(topo::small8());
    cpu::ExecEngine engine(sim, machine);
    Kernel kernel(sim, machine, engine, SchedParams{}, GetParam());
    kernel.start();
    Rng rng(GetParam());

    cpu::WorkProfile profile;
    profile.name = "prop";
    profile.ipcBase = 1.5;
    profile.l3Apki = 2.0;
    profile.wssBytes = 2.0 * 1024 * 1024;

    constexpr int kThreads = 12;
    constexpr int kRounds = 8;
    int completions = 0;
    struct Job
    {
        Thread *thread;
        CpuMask affinity;
        int rounds = 0;
    };
    std::vector<Job> jobs;
    jobs.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        const CpuId lo =
            static_cast<CpuId>(rng.uniformInt(0, machine.numCpus() - 1));
        const CpuId hi = static_cast<CpuId>(
            rng.uniformInt(lo, machine.numCpus() - 1));
        const CpuMask mask = CpuMask::range(lo, hi);
        jobs.push_back(
            Job{kernel.createThread("p" + std::to_string(i), mask), mask});
    }

    std::function<void(int)> submit = [&](int i) {
        Job &job = jobs[i];
        job.thread->run(
            profile, rng.uniformReal(0.5e6, 4e6), [&, i] {
                Job &j = jobs[i];
                EXPECT_TRUE(j.affinity.test(j.thread->ec().lastCpu()))
                    << "thread " << i << " ran on cpu "
                    << j.thread->ec().lastCpu() << " outside "
                    << j.affinity.toString();
                ++completions;
                if (++j.rounds < kRounds)
                    submit(i);
            });
    };
    for (int i = 0; i < kThreads; ++i)
        submit(i);
    sim.run();
    EXPECT_EQ(completions, kThreads * kRounds);
    kernel.stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace microscale::os
