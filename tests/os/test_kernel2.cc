/**
 * @file
 * Second wave of scheduler tests: fairness, vruntime floors, balance
 * configuration flags and switch-cost edge cases.
 */

#include <gtest/gtest.h>

#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "topo/presets.hh"

namespace microscale::os
{
namespace
{

class Kernel2Test : public ::testing::Test
{
  protected:
    explicit Kernel2Test(SchedParams params = SchedParams{})
        : machine_(topo::small8()),
          engine_(sim_, machine_),
          kernel_(sim_, machine_, engine_, params, 1)
    {
        profile_.name = "k2";
        profile_.ipcBase = 1.0;
        profile_.branchMpki = 0.0;
        profile_.icacheMpki = 0.0;
        profile_.l3Apki = 0.0;
        profile_.kernelShare = 0.0;
    }

    static constexpr double kChunk = 3e6; // ~1ms

    sim::Simulation sim_;
    topo::Machine machine_;
    cpu::ExecEngine engine_;
    Kernel kernel_;
    cpu::WorkProfile profile_;
};

TEST_F(Kernel2Test, ThreeWayFairnessOnOneCpu)
{
    kernel_.start();
    Thread *t[3];
    for (int i = 0; i < 3; ++i) {
        t[i] = kernel_.createThread("f" + std::to_string(i),
                                    CpuMask::single(0));
        t[i]->run(profile_, 20 * kChunk, [] {});
    }
    sim_.run();
    // Everyone consumed the same work; CPU time within 2x of each
    // other (scheduling quantization allows some skew).
    for (int i = 1; i < 3; ++i) {
        EXPECT_GT(t[i]->cpuTimeNs(), t[0]->cpuTimeNs() * 0.5);
        EXPECT_LT(t[i]->cpuTimeNs(), t[0]->cpuTimeNs() * 2.0);
    }
}

TEST_F(Kernel2Test, LongSleeperDoesNotMonopolize)
{
    kernel_.start();
    Thread *busy = kernel_.createThread("busy", CpuMask::single(0));
    Thread *sleeper = kernel_.createThread("sleeper", CpuMask::single(0));

    // busy accumulates lots of vruntime first.
    busy->run(profile_, 30 * kChunk, [] {});
    sim_.runUntil(5 * kMillisecond);
    // sleeper wakes with vruntime 0 - the enqueue floor must place it
    // near the queue min, not let it run for 10ms uninterrupted.
    bool busy_done = false;
    sleeper->run(profile_, 30 * kChunk, [] {});
    sim_.run();
    (void)busy_done;
    // Both finished; the sleeper was throttled by the min_vruntime
    // floor so busy wasn't starved for its whole remaining runtime.
    EXPECT_GT(busy->cpuTimeNs(), 0.0);
    EXPECT_GT(sleeper->cpuTimeNs(), 0.0);
}

TEST_F(Kernel2Test, StatsAreMonotonic)
{
    kernel_.start();
    Thread *a = kernel_.createThread("a", CpuMask::range(0, 1));
    std::function<void()> chain;
    int rounds = 0;
    chain = [&] {
        if (++rounds < 6)
            a->run(profile_, kChunk, chain);
    };
    a->run(profile_, kChunk, chain);
    const SchedStats before = kernel_.stats();
    sim_.run();
    const SchedStats after = kernel_.stats();
    EXPECT_GE(after.wakeups, before.wakeups + 5);
    EXPECT_GE(after.contextSwitches, before.contextSwitches);
}

class NoStealTest : public Kernel2Test
{
  protected:
    static SchedParams
    params()
    {
        SchedParams p;
        p.newIdleSteal = false;
        p.loadBalance = false;
        return p;
    }
    NoStealTest() : Kernel2Test(params()) {}
};

TEST_F(NoStealTest, DisabledStealLeavesWorkQueued)
{
    kernel_.start();
    Thread *a = kernel_.createThread("a", CpuMask::single(0));
    Thread *c = kernel_.createThread("c", CpuMask::range(0, 1));
    a->run(profile_, 10 * kChunk, [] {});
    // c wakes while cpu0 is busy; wake placement puts it on idle cpu1,
    // so force the queueing case by pinning after wake is impossible -
    // instead verify the flag holds: no pulls ever counted.
    c->run(profile_, 2 * kChunk, [] {});
    sim_.run();
    EXPECT_EQ(kernel_.stats().newIdlePulls, 0u);
    EXPECT_EQ(kernel_.stats().balancePulls, 0u);
}

class FreeSwitchTest : public Kernel2Test
{
  protected:
    static SchedParams
    params()
    {
        SchedParams p;
        p.switchCost = 0;
        return p;
    }
    FreeSwitchTest() : Kernel2Test(params()) {}
};

TEST_F(FreeSwitchTest, ZeroSwitchCostRunsImmediately)
{
    Thread *t = kernel_.createThread("t", CpuMask::single(0));
    bool done = false;
    t->run(profile_, kChunk, [&] { done = true; });
    // Dispatched synchronously: the engine already sees it running.
    EXPECT_NE(engine_.runningOn(0), nullptr);
    sim_.run();
    EXPECT_TRUE(done);
    // No switch cost => no kernel-overhead instructions charged.
    EXPECT_DOUBLE_EQ(t->ec().counters().kernelInstructions, 0.0);
}

TEST_F(Kernel2Test, AffinityToOtherNodeMovesMemoryHome)
{
    // small8 has one node; use rome128 for a cross-node move.
    sim::Simulation sim;
    topo::Machine machine(topo::rome128());
    cpu::ExecEngine engine(sim, machine);
    Kernel kernel(sim, machine, engine, SchedParams{}, 1);
    kernel.start();
    Thread *t = kernel.createThread("t", machine.cpusOfNode(0));
    t->run(profile_, 10 * kChunk, [] {});
    sim.runUntil(kMillisecond);
    EXPECT_EQ(t->ec().homeNode(), 0u); // first touch on node 0
    // Re-pin to node 2: thread migrates but memory home stays (no
    // automatic page migration, as on real Linux).
    t->setAffinity(machine.cpusOfNode(2));
    sim.run();
    EXPECT_EQ(machine.nodeOf(t->ec().lastCpu()), 2u);
    EXPECT_EQ(t->ec().homeNode(), 0u);
    kernel.stop();
}

TEST_F(Kernel2Test, ManyThreadsManyCpusAllFinish)
{
    kernel_.start();
    int done = 0;
    for (int i = 0; i < 32; ++i) {
        Thread *t = kernel_.createThread("m" + std::to_string(i),
                                         machine_.allCpus());
        t->run(profile_, kChunk * (1 + i % 4), [&done] { ++done; });
    }
    sim_.run();
    EXPECT_EQ(done, 32);
}

} // namespace
} // namespace microscale::os
