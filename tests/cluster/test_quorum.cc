/**
 * @file
 * Replicated data tier tests: quorum resolution math, the bounded
 * hint queue, and full cluster runs at R=2 exercising quorum
 * writes/reads, write unavailability under partition, hinted handoff
 * replay, read repair after dropped hints, and the scripted
 * scale-event rebalance — each ending with the acked-write invariant
 * sweep (no acknowledged write may become unreadable at quorum).
 */

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "chaos/ledger.hh"
#include "cluster/cluster.hh"
#include "loadgen/mix.hh"
#include "svc/fault.hh"
#include "topo/machine.hh"

namespace microscale::cluster
{
namespace
{

TEST(QuorumMath, DefaultsIntersect)
{
    ReplicationParams p;
    for (unsigned r = 1; r <= 3; ++r) {
        p.factor = r;
        p.writeQuorum = 0;
        p.readQuorum = 0;
        const unsigned w = resolvedWriteQuorum(p);
        const unsigned rq = resolvedReadQuorum(p);
        EXPECT_EQ(w, r / 2 + 1);
        // W + R_q > R: every read quorum intersects every write quorum.
        EXPECT_GT(w + rq, r) << "factor " << r;
        EXPECT_LE(w, r);
        EXPECT_GE(rq, 1u);
        EXPECT_LE(rq, r);
    }

    // Explicit values win over the defaults.
    p.factor = 3;
    p.writeQuorum = 3;
    EXPECT_EQ(resolvedWriteQuorum(p), 3u);
    EXPECT_EQ(resolvedReadQuorum(p), 1u);
    p.readQuorum = 2;
    EXPECT_EQ(resolvedReadQuorum(p), 2u);
}

TEST(HintQueueTest, FifoAndBounded)
{
    HintQueue q(2);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.depth(), 0u);

    HintQueue::Hint h;
    h.op = "applyWrite";
    h.entity = "ordersOfUser:1";
    h.version = 1;
    EXPECT_TRUE(q.push(h));
    h.version = 2;
    EXPECT_TRUE(q.push(h));
    // At capacity: the queue refuses, it never evicts.
    h.version = 3;
    EXPECT_FALSE(q.push(h));
    EXPECT_EQ(q.depth(), 2u);

    EXPECT_EQ(q.pop().version, 1u);
    EXPECT_EQ(q.pop().version, 2u);
    EXPECT_TRUE(q.empty());

    // A zero-capacity queue drops everything (hint pressure mode).
    HintQueue none(0);
    EXPECT_FALSE(none.push(h));
}

/** The FIG-17 data-tier scenario of test_cluster.cc with replication
 * on top: 2 nodes, lan fabric, 2 shards, 2 cache nodes. */
core::ExperimentConfig
replicatedConfig(ClusterParams &params, unsigned factor)
{
    params = ClusterParams{};
    params.nodes = 2;
    params.nodeMachine = topo::small8();
    applyFabricPreset(params, "lan");
    params.shards = 2;
    params.cacheNodes = 2;
    params.cacheCapacity = 256;
    params.replication.factor = factor;

    core::ExperimentConfig c;
    c.machine = topo::small8();
    c.app.store.categories = 4;
    c.app.store.productsPerCategory = 10;
    c.app.store.users = 20;
    c.sizing.webui = {1, 8};
    c.sizing.auth = {1, 4};
    c.sizing.persistence = {1, 8};
    c.sizing.recommender = {1, 2};
    c.sizing.image = {1, 8};
    c.sizing.registry = {1, 1};
    c.load.users = 60;
    c.load.meanThink = 50 * kMillisecond;
    c.warmup = 200 * kMillisecond;
    c.measure = 400 * kMillisecond;
    c.drainAtEnd = true;
    return c;
}

TEST(Quorum, HealthyRunAcksAndVerifies)
{
    ClusterParams params;
    core::ExperimentConfig cfg = replicatedConfig(params, 2);
    chaos::RequestLedger ledger;
    cfg.ledger = &ledger;

    const core::RunResult r = runScaleout(cfg, params);

    ASSERT_TRUE(r.replication.active);
    EXPECT_EQ(r.replication.factor, 2u);
    EXPECT_EQ(r.replication.writeQuorum, 2u);
    EXPECT_EQ(r.replication.readQuorum, 1u);

    // Checkouts drove quorum writes; cache misses drove quorum reads.
    EXPECT_GT(r.replication.quorumWrites, 0u);
    EXPECT_GT(r.replication.quorumReads, 0u);
    EXPECT_EQ(r.replication.writeFailures, 0u);
    EXPECT_EQ(r.replication.readFailures, 0u);
    EXPECT_EQ(r.replication.ackedWrites, r.replication.quorumWrites);
    EXPECT_GT(r.replication.writeAckP99Ms, 0.0);

    // Healthy cluster: nothing hinted, nothing lost, nothing stale.
    EXPECT_EQ(r.replication.hintsQueued, 0u);
    EXPECT_TRUE(r.replication.consistencyChecked);
    EXPECT_EQ(r.replication.lostAckedWrites, 0u);
    EXPECT_EQ(r.replication.staleQuorumReads, 0u);

    std::vector<std::string> violations;
    EXPECT_TRUE(ledger.verifyReplication(violations)) << violations.size();
    EXPECT_TRUE(violations.empty());
    EXPECT_EQ(ledger.ackedWriteCount(), r.replication.ackedWrites);

    // Determinism: the same config replays to the same counters.
    ClusterParams params2;
    core::ExperimentConfig cfg2 = replicatedConfig(params2, 2);
    chaos::RequestLedger ledger2;
    cfg2.ledger = &ledger2;
    const core::RunResult r2 = runScaleout(cfg2, params2);
    EXPECT_EQ(r2.replication.quorumWrites, r.replication.quorumWrites);
    EXPECT_EQ(r2.replication.quorumReads, r.replication.quorumReads);
}

TEST(Quorum, WriteQuorumUnreachableFailsWrites)
{
    // W = R = 2 with one shard down for the whole run: every key's
    // owner set spans both shards, so no write can reach quorum — all
    // of them must surface Unavailable, none may ack.
    ClusterParams params;
    core::ExperimentConfig cfg = replicatedConfig(params, 2);
    chaos::RequestLedger ledger;
    cfg.ledger = &ledger;

    svc::FaultEvent down;
    down.kind = svc::FaultEvent::Kind::ReplicaDown;
    down.at = 1 * kMillisecond;
    down.service = "shard1";
    down.replica = 0;
    cfg.faults.events.push_back(down);

    const core::RunResult r = runScaleout(cfg, params);

    ASSERT_TRUE(r.replication.active);
    EXPECT_GT(r.replication.writeFailures, 0u);
    EXPECT_EQ(r.replication.ackedWrites, 0u);
    // Unacked writes owe nothing: no hints, no losses.
    EXPECT_EQ(r.replication.hintsQueued, 0u);
    EXPECT_EQ(r.replication.lostAckedWrites, 0u);
    // Reads still work at R_q = 1 through the surviving shard.
    EXPECT_GT(r.replication.quorumReads, 0u);

    std::vector<std::string> violations;
    EXPECT_TRUE(ledger.verifyReplication(violations));
}

TEST(Quorum, HintedHandoffReplaysOnRecovery)
{
    // W = 1: writes keep acking through the up owner while its peer is
    // down, each one leaving a hint. On the up edge the queue replays
    // in order and the acked writes stay quorum-readable.
    ClusterParams params;
    core::ExperimentConfig cfg = replicatedConfig(params, 2);
    params.replication.writeQuorum = 1;
    params.replication.readQuorum = 1;
    chaos::RequestLedger ledger;
    cfg.ledger = &ledger;

    svc::FaultEvent down;
    down.kind = svc::FaultEvent::Kind::ReplicaDown;
    down.at = 100 * kMillisecond;
    down.service = "shard1";
    down.replica = 0;
    cfg.faults.events.push_back(down);
    svc::FaultEvent up = down;
    up.kind = svc::FaultEvent::Kind::ReplicaUp;
    up.at = 350 * kMillisecond;
    cfg.faults.events.push_back(up);

    const core::RunResult r = runScaleout(cfg, params);

    ASSERT_TRUE(r.replication.active);
    EXPECT_EQ(r.replication.writeQuorum, 1u);
    EXPECT_GT(r.replication.ackedWrites, 0u);
    EXPECT_EQ(r.replication.writeFailures, 0u);
    EXPECT_GT(r.replication.hintsQueued, 0u);
    EXPECT_GT(r.replication.hintsReplayed, 0u);
    EXPECT_LE(r.replication.hintsReplayed, r.replication.hintsQueued);
    EXPECT_GT(r.replication.hintDepthPeak, 0u);

    // The invariant the hints exist to protect.
    EXPECT_TRUE(r.replication.consistencyChecked);
    EXPECT_EQ(r.replication.lostAckedWrites, 0u);

    std::vector<std::string> violations;
    EXPECT_TRUE(ledger.verifyReplication(violations)) << violations.size();
}

TEST(Quorum, ReadRepairConvergesAfterDroppedHints)
{
    // Hint pressure: capacity 0 drops every hint, so the recovered
    // shard comes back stale. R_q = 2 reads see the divergence, serve
    // the freshest version and repair the laggard — no stale read and
    // no lost write even with handoff disabled.
    ClusterParams params;
    core::ExperimentConfig cfg = replicatedConfig(params, 2);
    params.replication.writeQuorum = 1;
    params.replication.hintQueueCap = 0;
    // An order-heavy mix (every op leads to a checkout, a profile view
    // or a cart add): the outage leaves most of the small user base's
    // order lists divergent and the profile views right after recovery
    // are near-certain to hit one before its next write converges it.
    std::array<std::array<double, teastore::kNumOps>, teastore::kNumOps>
        t{};
    for (auto &row : t) {
        row[static_cast<unsigned>(teastore::OpType::AddToCart)] = 0.2;
        row[static_cast<unsigned>(teastore::OpType::Checkout)] = 0.4;
        row[static_cast<unsigned>(teastore::OpType::Profile)] = 0.4;
    }
    cfg.mix = loadgen::BrowseMix(t);
    cfg.load.users = 150;
    cfg.load.meanThink = 20 * kMillisecond;
    cfg.measure = 700 * kMillisecond;
    chaos::RequestLedger ledger;
    cfg.ledger = &ledger;

    svc::FaultEvent down;
    down.kind = svc::FaultEvent::Kind::ReplicaDown;
    down.at = 100 * kMillisecond;
    down.service = "shard1";
    down.replica = 0;
    cfg.faults.events.push_back(down);
    svc::FaultEvent up = down;
    up.kind = svc::FaultEvent::Kind::ReplicaUp;
    up.at = 350 * kMillisecond;
    cfg.faults.events.push_back(up);

    const core::RunResult r = runScaleout(cfg, params);

    ASSERT_TRUE(r.replication.active);
    EXPECT_EQ(r.replication.readQuorum, 2u);
    EXPECT_GT(r.replication.ackedWrites, 0u);
    EXPECT_GT(r.replication.hintsDropped, 0u);
    EXPECT_EQ(r.replication.hintsReplayed, 0u);
    EXPECT_GT(r.replication.readRepairs, 0u);

    // Quorum intersection (W=1 acks live on the read path's probe
    // set): reads never served stale and the sweep finds every acked
    // write still readable.
    EXPECT_EQ(r.replication.staleQuorumReads, 0u);
    EXPECT_EQ(r.replication.lostAckedWrites, 0u);

    std::vector<std::string> violations;
    EXPECT_TRUE(ledger.verifyReplication(violations)) << violations.size();
}

TEST(Quorum, ScaleAddRebalancesWithoutLoss)
{
    // A third node joins mid-window: a new shard is created there, the
    // moved ranges stream over in bounded batches, and cutover hands
    // the ring over with every acked write still quorum-readable.
    ClusterParams params;
    core::ExperimentConfig cfg = replicatedConfig(params, 2);
    params.nodes = 3;
    params.initialNodes = 2;
    params.replication.scaleAddNodeAt = 300 * kMillisecond;
    params.replication.rebalanceBatchEntities = 8;
    chaos::RequestLedger ledger;
    cfg.ledger = &ledger;

    const core::RunResult r = runScaleout(cfg, params);

    ASSERT_TRUE(r.replication.active);
    EXPECT_EQ(r.replication.rebalancesStarted, 1u);
    EXPECT_EQ(r.replication.rebalancesCompleted, 1u);
    EXPECT_GT(r.replication.rebalanceBatches, 0u);
    EXPECT_GT(r.replication.rebalanceBytes, 0u);
    EXPECT_GT(r.replication.rebalanceMsTotal, 0.0);
    EXPECT_EQ(r.scaleout.activeNodesEnd, 3u);

    EXPECT_TRUE(r.replication.consistencyChecked);
    EXPECT_EQ(r.replication.lostAckedWrites, 0u);
    EXPECT_EQ(r.replication.staleQuorumReads, 0u);

    std::vector<std::string> violations;
    EXPECT_TRUE(ledger.verifyReplication(violations)) << violations.size();
}

TEST(Quorum, DrainRebalancesToSurvivors)
{
    // Scripted drain needs enough shards that the survivors still span
    // R distinct nodes: 3 shards on 2 nodes, drain one of the pair.
    ClusterParams params;
    core::ExperimentConfig cfg = replicatedConfig(params, 2);
    params.shards = 3;
    params.replication.drainShardAt = 300 * kMillisecond;
    params.replication.drainShardId = 2;
    params.replication.rebalanceBatchEntities = 8;
    chaos::RequestLedger ledger;
    cfg.ledger = &ledger;

    const core::RunResult r = runScaleout(cfg, params);

    ASSERT_TRUE(r.replication.active);
    EXPECT_EQ(r.replication.rebalancesStarted, 1u);
    EXPECT_EQ(r.replication.rebalancesCompleted, 1u);
    EXPECT_GT(r.replication.rebalanceBytes, 0u);
    EXPECT_TRUE(r.replication.consistencyChecked);
    EXPECT_EQ(r.replication.lostAckedWrites, 0u);
    EXPECT_EQ(r.replication.staleQuorumReads, 0u);

    std::vector<std::string> violations;
    EXPECT_TRUE(ledger.verifyReplication(violations)) << violations.size();
}

} // namespace
} // namespace microscale::cluster
