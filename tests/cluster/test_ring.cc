/**
 * @file
 * HashRing unit tests: determinism across build orders, ownership
 * evenness, and bounded key movement on membership change — the
 * properties the cache/shard tier's routing correctness rests on.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/ring.hh"

namespace microscale::cluster
{
namespace
{

std::vector<std::string>
sampleKeys(unsigned count)
{
    std::vector<std::string> keys;
    keys.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        keys.push_back("product:" + std::to_string(i * 2654435761u));
    return keys;
}

TEST(HashRing, DeterministicAcrossInsertionOrders)
{
    HashRing forward(64);
    for (unsigned n = 0; n < 8; ++n)
        forward.addNode(n);

    HashRing backward(64);
    for (unsigned n = 8; n-- > 0;)
        backward.addNode(n);

    // A ring that lost members and regained them must also converge to
    // the same token set.
    HashRing churned(64);
    for (unsigned n = 0; n < 8; ++n)
        churned.addNode(n);
    churned.removeNode(3);
    churned.removeNode(6);
    churned.addNode(6);
    churned.addNode(3);

    for (const std::string &key : sampleKeys(5000)) {
        const unsigned want = forward.nodeFor(key);
        EXPECT_EQ(want, backward.nodeFor(key)) << key;
        EXPECT_EQ(want, churned.nodeFor(key)) << key;
    }
}

TEST(HashRing, MembershipIsIdempotent)
{
    HashRing ring(32);
    ring.addNode(1);
    ring.addNode(1);
    ring.addNode(2);
    EXPECT_EQ(ring.nodeCount(), 2u);
    EXPECT_TRUE(ring.contains(1));
    EXPECT_TRUE(ring.contains(2));
    EXPECT_FALSE(ring.contains(3));

    ring.removeNode(3); // non-member: no-op
    EXPECT_EQ(ring.nodeCount(), 2u);
    ring.removeNode(1);
    EXPECT_FALSE(ring.contains(1));
    EXPECT_EQ(ring.nodeCount(), 1u);

    HashRing same(32);
    same.addNode(2);
    for (const std::string &key : sampleKeys(200))
        EXPECT_EQ(ring.nodeFor(key), same.nodeFor(key));
}

TEST(HashRing, OwnershipRoughlyEven)
{
    constexpr unsigned kNodes = 8;
    constexpr unsigned kKeys = 20000;
    HashRing ring(64);
    for (unsigned n = 0; n < kNodes; ++n)
        ring.addNode(n);

    std::map<unsigned, unsigned> owned;
    for (const std::string &key : sampleKeys(kKeys))
        ++owned[ring.nodeFor(key)];

    // With 64 vnodes per member, every node should hold a sizeable
    // slice: no node starved below a third of fair share, none over
    // double it.
    const double fair = static_cast<double>(kKeys) / kNodes;
    ASSERT_EQ(owned.size(), kNodes);
    for (const auto &[node, count] : owned) {
        EXPECT_GT(count, fair / 3.0) << "node " << node << " starved";
        EXPECT_LT(count, fair * 2.0) << "node " << node << " overloaded";
    }
}

TEST(HashRing, NodeAddMovesBoundedKeyShare)
{
    constexpr unsigned kNodes = 8;
    constexpr unsigned kKeys = 20000;
    HashRing ring(64);
    for (unsigned n = 0; n < kNodes; ++n)
        ring.addNode(n);

    const std::vector<std::string> keys = sampleKeys(kKeys);
    std::vector<unsigned> before;
    before.reserve(keys.size());
    for (const std::string &key : keys)
        before.push_back(ring.nodeFor(key));

    ring.addNode(kNodes);

    unsigned moved = 0;
    for (unsigned i = 0; i < keys.size(); ++i) {
        const unsigned now = ring.nodeFor(keys[i]);
        if (now != before[i]) {
            // Consistent hashing: a key may only move TO the newcomer.
            EXPECT_EQ(now, kNodes) << keys[i];
            ++moved;
        }
    }
    // Expected movement is 1/(N+1) of the key space; allow vnode
    // placement slack up to 1/(N+1) + eps.
    const double share =
        static_cast<double>(moved) / static_cast<double>(kKeys);
    EXPECT_GT(share, 0.0);
    EXPECT_LT(share, 1.0 / (kNodes + 1) + 0.08);
}

TEST(HashRing, NodeRemoveMovesOnlyItsKeys)
{
    constexpr unsigned kNodes = 8;
    constexpr unsigned kKeys = 20000;
    HashRing ring(64);
    for (unsigned n = 0; n < kNodes; ++n)
        ring.addNode(n);

    const std::vector<std::string> keys = sampleKeys(kKeys);
    std::vector<unsigned> before;
    before.reserve(keys.size());
    for (const std::string &key : keys)
        before.push_back(ring.nodeFor(key));

    constexpr unsigned kVictim = 5;
    ring.removeNode(kVictim);

    unsigned moved = 0;
    for (unsigned i = 0; i < keys.size(); ++i) {
        const unsigned now = ring.nodeFor(keys[i]);
        EXPECT_NE(now, kVictim);
        if (before[i] == kVictim) {
            ++moved;
        } else {
            // Keys not owned by the victim must not move at all.
            EXPECT_EQ(now, before[i]) << keys[i];
        }
    }
    const double share =
        static_cast<double>(moved) / static_cast<double>(kKeys);
    EXPECT_GT(share, 0.0);
    EXPECT_LT(share, 1.0 / kNodes + 0.08);
}

TEST(HashRing, OwnersForWalksDistinctGroups)
{
    // Six shards on three cluster nodes, two shards per node. With
    // replication factor 3 the successor walk must pick one shard per
    // node for every key, never two co-located replicas.
    HashRing ring(64);
    for (unsigned s = 0; s < 6; ++s) {
        ring.addNode(s);
        ring.setGroup(s, s / 2);
    }

    for (const std::string &key : sampleKeys(2000)) {
        const auto owners = ring.ownersFor(key, 3);
        ASSERT_EQ(owners.size(), 3u) << key;
        EXPECT_EQ(owners[0], ring.nodeFor(key)) << key;
        std::set<unsigned> groups;
        for (unsigned o : owners)
            groups.insert(ring.groupOf(o));
        EXPECT_EQ(groups.size(), 3u) << key;
    }
}

TEST(HashRing, OwnersForCapsAtDistinctGroupCount)
{
    // Four shards but only two failure domains: asking for three
    // owners yields two — the walk refuses a co-located "replica".
    HashRing ring(64);
    for (unsigned s = 0; s < 4; ++s) {
        ring.addNode(s);
        ring.setGroup(s, s % 2);
    }
    for (const std::string &key : sampleKeys(200)) {
        const auto owners = ring.ownersFor(key, 3);
        ASSERT_EQ(owners.size(), 2u) << key;
        EXPECT_NE(ring.groupOf(owners[0]), ring.groupOf(owners[1]));
    }

    // Without groups every member is its own domain.
    HashRing flat(64);
    for (unsigned s = 0; s < 4; ++s)
        flat.addNode(s);
    EXPECT_EQ(flat.ownersFor("k", 3).size(), 3u);
    EXPECT_EQ(flat.ownersFor("k", 1).size(), 1u);
}

TEST(HashRing, OwnersForSpreadsSecondaries)
{
    // Secondary ownership must disperse, not pile onto one victim:
    // with 6 equal shards no member should back up more than ~2x its
    // fair share of the keys it doesn't own.
    HashRing ring(64);
    for (unsigned s = 0; s < 6; ++s)
        ring.addNode(s);

    std::map<unsigned, unsigned> secondary;
    const auto keys = sampleKeys(6000);
    for (const std::string &key : keys)
        ++secondary[ring.ownersFor(key, 2).at(1)];

    const double fair = static_cast<double>(keys.size()) / 6.0;
    for (const auto &[node, count] : secondary)
        EXPECT_LT(count, 2.0 * fair) << "node " << node;
}

TEST(HashRing, HashIsStable)
{
    // Pin the hash function itself (FNV-1a plus finalizer). A silent
    // change here would reshuffle every deployment's shard map.
    EXPECT_EQ(HashRing::hash(""), 17280346270528514342ull);
    EXPECT_EQ(HashRing::hash("a"), 9413272369427828315ull);
    EXPECT_EQ(HashRing::hash("product:42"),
              HashRing::hash(std::string("product:") + "42"));
    EXPECT_NE(HashRing::hash("product:42"), HashRing::hash("product:43"));
}

} // namespace
} // namespace microscale::cluster
