/**
 * @file
 * Cluster scale-out tests.
 *
 * The load-bearing one is SingleNodeByteIdentity: a 1-node cluster
 * with an ideal fabric and no cache/shard tier must reproduce the
 * FIG-01 golden capture byte-for-byte (modulo the scaleout summary
 * block, which only cluster runs carry). That pins the router, the
 * fabric hooks and the placement override as exact no-ops on the
 * single-machine path. The rest exercise the multi-node pieces:
 * fabric accounting, cache invalidation-on-write, node spill
 * placement and whole-node autoscaling.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cluster/cluster.hh"
#include "core/json.hh"
#include "topo/machine.hh"

#ifndef MICROSCALE_GOLDEN_DIR
#error "MICROSCALE_GOLDEN_DIR must be defined by the build"
#endif

namespace microscale::cluster
{
namespace
{

/** The reduced FIG-01 scenario from tests/integration/test_golden.cc,
 * minus the machine (the cluster supplies it from nodeMachine). */
core::ExperimentConfig
baseConfig()
{
    core::ExperimentConfig c;
    c.machine = topo::small8();
    c.app.store.categories = 4;
    c.app.store.productsPerCategory = 10;
    c.app.store.users = 20;
    c.sizing.webui = {1, 8};
    c.sizing.auth = {1, 4};
    c.sizing.persistence = {1, 8};
    c.sizing.recommender = {1, 2};
    c.sizing.image = {1, 8};
    c.sizing.registry = {1, 1};
    c.load.users = 60;
    c.load.meanThink = 50 * kMillisecond;
    c.warmup = 200 * kMillisecond;
    c.measure = 400 * kMillisecond;
    return c;
}

std::string
resultJson(const core::RunResult &r)
{
    std::ostringstream os;
    core::writeJson(os, r);
    os << "\n";
    return os.str();
}

TEST(ClusterGolden, SingleNodeByteIdentity)
{
    // The golden is owned (and regenerated) by test_integration; here
    // we only ever compare, so a regen pass skips instead of writing.
    if (std::getenv("MICROSCALE_REGEN_GOLDENS") != nullptr)
        GTEST_SKIP() << "golden owned by test_integration";

    const std::string path =
        std::string(MICROSCALE_GOLDEN_DIR) + "/fig01_closed_loop.json";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden " << path;
    std::ostringstream want;
    want << in.rdbuf();

    ClusterParams params;
    params.nodes = 1;
    params.nodeMachine = topo::small8();
    applyFabricPreset(params, "ideal");

    core::RunResult r = runScaleout(baseConfig(), params);
    EXPECT_TRUE(r.scaleout.active);
    EXPECT_EQ(r.scaleout.nodes, 1u);
    // Every message stayed on the one machine.
    EXPECT_EQ(r.scaleout.fabricMessages, 0u);

    // Strip the scaleout block (the only field a cluster run adds) and
    // demand byte equality with the single-machine capture.
    r.scaleout = core::ScaleoutSummary{};
    EXPECT_EQ(resultJson(r), want.str())
        << "1-node cluster diverged from the single-machine engine";
}

/** The FIG-17 data-tier reference scenario: 2 nodes, lan fabric, 2
 * shards behind a 2-node cache tier. Owned by this test (regen writes
 * it); the replication layer must leave it byte-identical at R=1. */
core::ExperimentConfig
dataTierConfig(ClusterParams &params)
{
    params = ClusterParams{};
    params.nodes = 2;
    params.nodeMachine = topo::small8();
    applyFabricPreset(params, "lan");
    params.shards = 2;
    params.cacheNodes = 2;
    params.cacheCapacity = 256;
    return baseConfig();
}

TEST(ClusterGolden, DataTierR1ByteIdentity)
{
    const std::string path =
        std::string(MICROSCALE_GOLDEN_DIR) + "/fig17_datatier.json";

    ClusterParams params;
    const core::ExperimentConfig cfg = dataTierConfig(params);
    // R=1 is the default: the replicated data tier must be a no-op.
    const core::RunResult r = runScaleout(cfg, params);
    const std::string got = resultJson(r);

    if (std::getenv("MICROSCALE_REGEN_GOLDENS") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write golden " << path;
        out << got;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden " << path;
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "R=1 data tier diverged from the FIG-17 capture";
}

TEST(Cluster, FabricPresets)
{
    ClusterParams p;
    applyFabricPreset(p, "lan");
    EXPECT_EQ(p.fabricBaseNs, 12 * kMicrosecond);
    EXPECT_EQ(p.fabricPerKibNs, 400);
    EXPECT_DOUBLE_EQ(p.fabricJitterCv, 0.10);
    EXPECT_EQ(p.fabricRackSize, 0u);

    applyFabricPreset(p, "oversub");
    EXPECT_EQ(p.fabricRackSize, 4u);
    EXPECT_DOUBLE_EQ(p.fabricCoreFactor, 2.5);

    applyFabricPreset(p, "ideal");
    EXPECT_EQ(p.fabricBaseNs, 0);
    EXPECT_EQ(p.fabricPerKibNs, 0);

    EXPECT_EQ(fabricPresetNames().size(), 3u);
}

TEST(Cluster, ClusterMachineMultipliesSockets)
{
    ClusterParams p;
    p.nodes = 4;
    p.nodeMachine = topo::small8();
    const topo::MachineParams m = clusterMachine(p);
    EXPECT_EQ(m.sockets, p.nodeMachine.sockets * 4);
    EXPECT_EQ(m.totalCpus(), p.nodeMachine.totalCpus() * 4);
    EXPECT_NE(m.name.find("-x4"), std::string::npos);

    p.nodes = 1;
    EXPECT_EQ(clusterMachine(p).name, p.nodeMachine.name);
}

TEST(Cluster, NodePlacerSpillsWhenPreferredFull)
{
    ClusterParams p;
    p.nodes = 2;
    p.nodeMachine = topo::small8();
    topo::Machine machine(clusterMachine(p));

    std::vector<CpuMask> budgets;
    for (unsigned n = 0; n < p.nodes; ++n) {
        CpuMask nb;
        const unsigned spn = p.nodeMachine.sockets;
        for (unsigned s = n * spn; s < (n + 1) * spn; ++s)
            nb = nb | machine.cpusOfSocket(s);
        budgets.push_back(nb);
    }

    NodePlacer placer(machine, budgets,
                      autoscale::PlacerKind::TopologyAware, 0);

    // small8 has two CCX groups per node: the first two grants stay
    // on the preferred node, the next two spill to the free peer.
    const auto g0 = placer.grant(0);
    const auto g1 = placer.grant(0);
    EXPECT_EQ(g0.node, 0u);
    EXPECT_EQ(g1.node, 0u);
    EXPECT_EQ(placer.spills(), 0u);

    const auto g2 = placer.grant(0);
    const auto g3 = placer.grant(0);
    EXPECT_EQ(g2.node, 1u);
    EXPECT_EQ(g3.node, 1u);
    EXPECT_EQ(placer.spills(), 2u);

    // Grants land inside the providing node's budget.
    EXPECT_EQ((g0.grant.mask & budgets[0]).count(),
              g0.grant.mask.count());
    EXPECT_EQ((g2.grant.mask & budgets[1]).count(),
              g2.grant.mask.count());

    // Everyone full: the preferred node doubles up instead.
    const auto g4 = placer.grant(1);
    EXPECT_EQ(g4.node, 1u);
    EXPECT_EQ(placer.spills(), 2u);
}

TEST(Cluster, MultiNodeFabricAndCacheTier)
{
    ClusterParams params;
    params.nodes = 2;
    params.nodeMachine = topo::small8();
    applyFabricPreset(params, "lan");
    params.shards = 2;
    params.cacheNodes = 2;
    params.cacheCapacity = 256;

    const core::RunResult r = runScaleout(baseConfig(), params);

    ASSERT_TRUE(r.scaleout.active);
    EXPECT_EQ(r.scaleout.nodes, 2u);
    EXPECT_EQ(r.scaleout.activeNodesEnd, 2u);
    EXPECT_EQ(r.scaleout.shards, 2u);
    EXPECT_EQ(r.scaleout.cacheNodes, 2u);
    EXPECT_GT(r.throughputRps, 0.0);

    // Replicas live on both machines, so some calls crossed the
    // fabric and paid for it.
    EXPECT_GT(r.scaleout.fabricMessages, 0u);
    EXPECT_GT(r.scaleout.fabricBytes, 0u);
    EXPECT_GT(r.scaleout.fabricShare, 0.0);
    EXPECT_LT(r.scaleout.fabricShare, 1.0);

    // The cache tier served lookups and the shards the misses.
    const std::uint64_t lookups =
        r.scaleout.cacheHits + r.scaleout.cacheMisses;
    EXPECT_GT(lookups, 0u);
    EXPECT_GT(r.scaleout.cacheHits, 0u);
    EXPECT_GE(r.scaleout.cacheHitRate, 0.0);
    EXPECT_LE(r.scaleout.cacheHitRate, 1.0);
    EXPECT_GT(r.scaleout.shardRequests, 0u);
    // Misses (plus writes) are what reach the shards: hit-rate
    // dependent offload means shard traffic stays below lookups.
    EXPECT_LT(r.scaleout.shardRequests, lookups + r.scaleout.cacheMisses);
}

TEST(Cluster, InvalidationOnWriteKeepsCacheCoherent)
{
    ClusterParams params;
    params.nodes = 2;
    params.nodeMachine = topo::small8();
    applyFabricPreset(params, "lan");
    params.shards = 2;
    params.cacheNodes = 1;
    // A tiny cache forces eviction churn alongside the invalidations.
    params.cacheCapacity = 32;

    core::ExperimentConfig cfg = baseConfig();
    const core::RunResult r = runScaleout(cfg, params);

    ASSERT_TRUE(r.scaleout.active);
    // Every checkout places an order, and every order write bumps the
    // buyer's order-list epoch on its cache node; the measured
    // checkout count is a lower bound (warmup writes invalidate too).
    const auto it = r.perOp.find("checkout");
    ASSERT_NE(it, r.perOp.end());
    EXPECT_GT(it->second.count, 0u);
    EXPECT_GE(r.scaleout.cacheInvalidations, it->second.count);
    EXPECT_GT(r.scaleout.cacheEvictions, 0u);
}

TEST(Cluster, NodeScalerProvisionsSpareNode)
{
    ClusterParams params;
    params.nodes = 2;
    params.initialNodes = 1;
    params.nodeMachine = topo::small8();
    applyFabricPreset(params, "ideal");
    params.scaler.enabled = true;
    params.scaler.period = 50 * kMillisecond;
    params.scaler.hiUtilization = 0.30;
    params.scaler.consecutive = 1;
    params.scaler.warmPool = 1;
    params.scaler.warmBootDelay = 20 * kMillisecond;
    params.scaler.cooldown = 0;

    core::ExperimentConfig cfg = baseConfig();
    // Saturate one small8 node so the scaler has a reason to act.
    cfg.load.users = 200;
    cfg.load.meanThink = 10 * kMillisecond;

    const core::RunResult r = runScaleout(cfg, params);

    ASSERT_TRUE(r.scaleout.active);
    EXPECT_EQ(r.scaleout.nodes, 2u);
    EXPECT_EQ(r.scaleout.activeNodesEnd, 2u);
    EXPECT_EQ(r.scaleout.nodesProvisioned, 1u);
    EXPECT_EQ(r.scaleout.warmProvisions, 1u);
    EXPECT_EQ(r.scaleout.coldProvisions, 0u);
    EXPECT_GT(r.scaleout.provisionLagMeanMs, 0.0);
}

} // namespace
} // namespace microscale::cluster
