/**
 * @file
 * Tests for the discrete-event engine: ordering, cancellation,
 * time-bounded runs and periodic events.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/types.hh"
#include "sim/simulation.hh"

namespace microscale::sim
{
namespace
{

TEST(Simulation, StartsAtZero)
{
    Simulation sim;
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_EQ(sim.eventsProcessed(), 0u);
}

TEST(Simulation, EventsRunInTimeOrder)
{
    Simulation sim;
    std::vector<int> order;
    sim.scheduleAt(30, [&] { order.push_back(3); });
    sim.scheduleAt(10, [&] { order.push_back(1); });
    sim.scheduleAt(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
    EXPECT_EQ(sim.eventsProcessed(), 3u);
}

TEST(Simulation, TiesAreFifo)
{
    Simulation sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.scheduleAt(100, [&order, i] { order.push_back(i); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleAfterIsRelative)
{
    Simulation sim;
    Tick seen = 0;
    sim.scheduleAt(50, [&] {
        sim.scheduleAfter(25, [&] { seen = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(seen, 75u);
}

TEST(Simulation, CancelledEventDoesNotRun)
{
    Simulation sim;
    bool ran = false;
    EventHandle h = sim.scheduleAt(10, [&] { ran = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    sim.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(sim.eventsProcessed(), 0u);
}

TEST(Simulation, CancelFromAnotherEvent)
{
    Simulation sim;
    bool ran = false;
    EventHandle h = sim.scheduleAt(20, [&] { ran = true; });
    sim.scheduleAt(10, [&] { h.cancel(); });
    sim.run();
    EXPECT_FALSE(ran);
}

TEST(Simulation, RunUntilAdvancesToBoundary)
{
    Simulation sim;
    int count = 0;
    sim.scheduleAt(10, [&] { ++count; });
    sim.scheduleAt(20, [&] { ++count; });
    sim.scheduleAt(30, [&] { ++count; });
    sim.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(sim.now(), 20u);
    sim.runUntil(100);
    EXPECT_EQ(count, 3);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulation, RunUntilWithEmptyQueueAdvancesTime)
{
    Simulation sim;
    sim.runUntil(500);
    EXPECT_EQ(sim.now(), 500u);
}

TEST(Simulation, StopHaltsProcessing)
{
    Simulation sim;
    int count = 0;
    sim.scheduleAt(10, [&] {
        ++count;
        sim.stop();
    });
    sim.scheduleAt(20, [&] { ++count; });
    sim.run();
    EXPECT_EQ(count, 1);
    // A subsequent run resumes.
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulation, EventsCanScheduleAtSameTick)
{
    Simulation sim;
    std::vector<int> order;
    sim.scheduleAt(10, [&] {
        order.push_back(1);
        sim.scheduleAfter(0, [&] { order.push_back(2); });
    });
    sim.scheduleAt(10, [&] { order.push_back(3); });
    sim.run();
    // The zero-delay event runs after already-queued same-tick events.
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(SimulationDeathTest, SchedulingInPastPanics)
{
    Simulation sim;
    sim.scheduleAt(10, [] {});
    sim.run();
    EXPECT_DEATH(sim.scheduleAt(5, [] {}), "past");
}

TEST(SimulationDeathTest, EmptyCallbackPanics)
{
    Simulation sim;
    EXPECT_DEATH(sim.scheduleAt(1, std::function<void()>()), "empty");
}

TEST(PeriodicEvent, FiresAtPeriod)
{
    Simulation sim;
    PeriodicEvent p;
    std::vector<Tick> fires;
    p.start(sim, 100, [&] { fires.push_back(sim.now()); });
    sim.runUntil(350);
    EXPECT_EQ(fires, (std::vector<Tick>{100, 200, 300}));
}

TEST(PeriodicEvent, PhaseOffset)
{
    Simulation sim;
    PeriodicEvent p;
    std::vector<Tick> fires;
    p.start(sim, 100, [&] { fires.push_back(sim.now()); }, 30);
    sim.runUntil(250);
    EXPECT_EQ(fires, (std::vector<Tick>{30, 130, 230}));
}

TEST(PeriodicEvent, StopFromCallback)
{
    Simulation sim;
    PeriodicEvent p;
    int count = 0;
    p.start(sim, 10, [&] {
        if (++count == 3)
            p.stop();
    });
    sim.runUntil(1000);
    EXPECT_EQ(count, 3);
    EXPECT_FALSE(p.active());
}

TEST(PeriodicEvent, RestartReplacesSchedule)
{
    Simulation sim;
    PeriodicEvent p;
    int a = 0, b = 0;
    p.start(sim, 10, [&] { ++a; });
    sim.runUntil(25);
    p.start(sim, 10, [&] { ++b; });
    sim.runUntil(55);
    EXPECT_EQ(a, 2);
    EXPECT_EQ(b, 3);
}

} // namespace
} // namespace microscale::sim
