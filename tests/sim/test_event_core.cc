/**
 * @file
 * Tests for the slab-allocated event core: randomized
 * schedule/cancel/reschedule interleavings cross-checked against a
 * naive reference queue, FIFO tie-break and heap-property invariants,
 * handle-generation reuse safety, EventFn storage classes, and the
 * queuedEvents() live-count semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "base/types.hh"
#include "sim/simulation.hh"

namespace microscale::sim
{
namespace
{

// ---------------------------------------------------------------- EventFn

TEST(EventFn, EmptyByDefault)
{
    EventFn f;
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(EventFn, InlineInvokes)
{
    int hits = 0;
    EventFn f([&hits] { ++hits; });
    ASSERT_TRUE(static_cast<bool>(f));
    f();
    f();
    EXPECT_EQ(hits, 2);
}

TEST(EventFn, MoveTransfersOwnership)
{
    int hits = 0;
    EventFn a([&hits] { ++hits; });
    EventFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT: testing moved-from
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);
}

TEST(EventFn, NonTrivialInlineCaptureDestroyed)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    {
        EventFn f([token] { (void)*token; });
        token.reset();
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

TEST(EventFn, OversizedCaptureHeapBoxed)
{
    // > kInlineBytes of capture forces the heap-box path.
    struct Big
    {
        std::uint64_t pad[12];
    };
    Big big{};
    big.pad[11] = 42;
    std::uint64_t seen = 0;
    EventFn f([big, &seen] { seen = big.pad[11]; });
    static_assert(sizeof(big) > EventFn::kInlineBytes);
    EventFn g(std::move(f));
    g();
    EXPECT_EQ(seen, 42u);
}

TEST(EventFn, StdFunctionFitsInline)
{
    // The PeriodicEvent path stores a std::function inside an EventFn.
    static_assert(sizeof(std::function<void()>) <=
                  EventFn::kInlineBytes);
    int hits = 0;
    std::function<void()> fn = [&hits] { ++hits; };
    EventFn f(std::move(fn));
    f();
    EXPECT_EQ(hits, 1);
}

TEST(EventFn, ResetReleasesCapture)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    EventFn f([token] {});
    token.reset();
    f.reset();
    EXPECT_TRUE(watch.expired());
    EXPECT_FALSE(static_cast<bool>(f));
}

// ------------------------------------------------------- slab + handles

TEST(EventCore, QueuedEventsCountsLiveOnly)
{
    Simulation sim;
    EventHandle a = sim.scheduleAt(10, [] {});
    EventHandle b = sim.scheduleAt(20, [] {});
    sim.scheduleAt(30, [] {});
    EXPECT_EQ(sim.queuedEvents(), 3u);
    // A cancelled event leaves a shell in the heap, but the count
    // reports live pending events only.
    a.cancel();
    EXPECT_EQ(sim.queuedEvents(), 2u);
    b.cancel();
    EXPECT_EQ(sim.queuedEvents(), 1u);
    sim.run();
    EXPECT_EQ(sim.queuedEvents(), 0u);
    EXPECT_EQ(sim.eventsProcessed(), 1u);
}

TEST(EventCore, SlotsAreReused)
{
    Simulation sim;
    for (int round = 0; round < 100; ++round) {
        sim.scheduleAfter(1, [] {});
        sim.run();
    }
    // Steady-state churn must not grow the slab.
    EXPECT_LE(sim.slabSlots(), 4u);
}

TEST(EventCore, StaleHandleAfterReuseIsInert)
{
    Simulation sim;
    int first = 0, second = 0;
    EventHandle h = sim.scheduleAt(10, [&] { ++first; });
    sim.run();
    EXPECT_EQ(first, 1);
    EXPECT_FALSE(h.pending());
    // The slot is recycled for a new event; the stale handle must not
    // observe or cancel it.
    sim.scheduleAt(20, [&] { ++second; });
    EXPECT_EQ(sim.slabSlots(), 1u);
    EXPECT_FALSE(h.pending());
    EXPECT_EQ(h.when(), 0u);
    h.cancel();
    sim.run();
    EXPECT_EQ(second, 1);
}

TEST(EventCore, DoubleCancelIsSafe)
{
    Simulation sim;
    bool ran = false;
    EventHandle h = sim.scheduleAt(10, [&] { ran = true; });
    EventHandle copy = h;
    h.cancel();
    h.cancel();
    copy.cancel();
    sim.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(sim.queuedEvents(), 0u);
}

TEST(EventCore, CancelReleasesCaptureEagerly)
{
    Simulation sim;
    auto token = std::make_shared<int>(3);
    std::weak_ptr<int> watch = token;
    EventHandle h = sim.scheduleAt(10, [token] {});
    token.reset();
    EXPECT_FALSE(watch.expired());
    h.cancel();
    // Captured resources die at cancel, not at pop.
    EXPECT_TRUE(watch.expired());
}

TEST(EventCore, ManyCancelsCompactHeap)
{
    // Pathological churn: schedule far-future events and cancel them
    // all; lazy deletion must compact instead of accumulating shells.
    Simulation sim;
    int ran = 0;
    for (int round = 0; round < 200; ++round) {
        std::vector<EventHandle> hs;
        hs.reserve(50);
        for (int i = 0; i < 50; ++i)
            hs.push_back(
                sim.scheduleAt(1000000 + round, [&ran] { ++ran; }));
        for (EventHandle &h : hs)
            h.cancel();
    }
    EXPECT_EQ(sim.queuedEvents(), 0u);
    // Compaction also recycles the slots, so the slab stays bounded
    // by the peak number of simultaneously-scheduled events.
    EXPECT_LE(sim.slabSlots(), 256u);
    sim.scheduleAt(2000000, [&ran] { ++ran; });
    sim.run();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(sim.now(), 2000000u);
}

TEST(EventCore, CancelDuringRunUntilBoundarySkip)
{
    Simulation sim;
    int ran = 0;
    EventHandle h = sim.scheduleAt(50, [&] { ++ran; });
    sim.scheduleAt(10, [&] { h.cancel(); });
    sim.runUntil(100);
    EXPECT_EQ(ran, 0);
    EXPECT_EQ(sim.now(), 100u);
    EXPECT_EQ(sim.queuedEvents(), 0u);
}

// ------------------------------------------- randomized cross-check

/** Naive reference: linear scan for min-(when, seq), flag cancel. */
struct RefQueue
{
    struct Ev
    {
        Tick when;
        std::uint64_t seq;
        int id;
        bool cancelled = false;
        bool fired = false;
    };
    std::vector<Ev> evs;
    std::uint64_t next_seq = 0;

    int add(Tick when, int id)
    {
        evs.push_back({when, next_seq++, id});
        return static_cast<int>(evs.size()) - 1;
    }

    /** Fire all events with when <= until; return ids in order. */
    std::vector<int> drain(Tick until)
    {
        std::vector<int> out;
        for (;;) {
            Ev *best = nullptr;
            for (Ev &e : evs) {
                if (e.cancelled || e.fired || e.when > until)
                    continue;
                if (!best || e.when < best->when ||
                    (e.when == best->when && e.seq < best->seq))
                    best = &e;
            }
            if (!best)
                return out;
            best->fired = true;
            out.push_back(best->id);
        }
    }
};

TEST(EventCore, RandomizedMatchesReferenceQueue)
{
    // Drive the slab core and the naive reference with an identical
    // random interleaving of schedule/cancel/advance operations and
    // require identical firing orders.
    std::mt19937_64 rng(12345);
    for (int trial = 0; trial < 20; ++trial) {
        Simulation sim;
        RefQueue ref;
        std::vector<int> simFired, refFired;
        std::vector<std::pair<EventHandle, int>> live; // handle, ref idx
        Tick horizon = 0;
        int next_id = 0;
        for (int op = 0; op < 400; ++op) {
            const std::uint64_t what = rng() % 10;
            if (what < 6) {
                const Tick when = horizon + rng() % 1000;
                const int id = next_id++;
                live.emplace_back(
                    sim.scheduleAt(when,
                                   [&simFired, id] {
                                       simFired.push_back(id);
                                   }),
                    ref.add(when, id));
            } else if (what < 8 && !live.empty()) {
                const std::size_t pick = rng() % live.size();
                live[pick].first.cancel();
                ref.evs[live[pick].second].cancelled = true;
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(pick));
            } else {
                horizon += rng() % 500;
                sim.runUntil(horizon);
                const std::vector<int> out = ref.drain(horizon);
                refFired.insert(refFired.end(), out.begin(),
                                out.end());
                // Firing can invalidate handles; drop fired entries.
                live.erase(std::remove_if(
                               live.begin(), live.end(),
                               [](const auto &p) {
                                   return !p.first.pending();
                               }),
                           live.end());
            }
            ASSERT_EQ(simFired, refFired) << "trial " << trial
                                          << " op " << op;
            ASSERT_EQ(sim.queuedEvents(), live.size());
        }
        horizon += 1000000;
        sim.runUntil(horizon);
        const std::vector<int> out = ref.drain(horizon);
        refFired.insert(refFired.end(), out.begin(), out.end());
        EXPECT_EQ(simFired, refFired) << "trial " << trial;
        EXPECT_EQ(sim.queuedEvents(), 0u);
    }
}

TEST(EventCore, RescheduleViaCancelPlusScheduleKeepsFifo)
{
    // The ExecEngine::reprice pattern: cancel the pending completion
    // and schedule a new one, repeatedly, interleaved with other
    // same-tick events. FIFO among equal ticks must follow the final
    // schedule order.
    Simulation sim;
    std::vector<int> order;
    EventHandle completion =
        sim.scheduleAt(100, [&] { order.push_back(0); });
    sim.scheduleAt(100, [&] { order.push_back(1); });
    completion.cancel();
    completion = sim.scheduleAt(100, [&] { order.push_back(2); });
    sim.scheduleAt(100, [&] { order.push_back(3); });
    completion.cancel();
    completion = sim.scheduleAt(100, [&] { order.push_back(4); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
}

} // namespace
} // namespace microscale::sim
