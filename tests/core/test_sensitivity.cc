/**
 * @file
 * Sensitivity properties of the experiment runner: making the machine
 * or workload strictly worse must never improve the measured results.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace microscale::core
{
namespace
{

ExperimentConfig
fastConfig()
{
    ExperimentConfig c;
    c.machine = topo::small8();
    c.app.store.categories = 4;
    c.app.store.productsPerCategory = 10;
    c.app.store.users = 20;
    c.sizing.webui = {1, 8};
    c.sizing.auth = {1, 4};
    c.sizing.persistence = {1, 8};
    c.sizing.recommender = {1, 2};
    c.sizing.image = {1, 8};
    c.sizing.registry = {1, 1};
    c.load.users = 150;
    c.load.meanThink = 20 * kMillisecond;
    c.warmup = 200 * kMillisecond;
    c.measure = 400 * kMillisecond;
    return c;
}

TEST(Sensitivity, HigherWorkScaleLowersThroughput)
{
    ExperimentConfig c = fastConfig();
    const double t1 = runExperiment(c).throughputRps;
    c.app.workScale = 2.0;
    const double t2 = runExperiment(c).throughputRps;
    EXPECT_LT(t2, t1 * 0.75);
}

TEST(Sensitivity, HigherRpcCostLowersThroughput)
{
    ExperimentConfig c = fastConfig();
    const double t1 = runExperiment(c).throughputRps;
    c.rpc.fixedInstructions *= 6.0;
    c.rpc.perKibInstructions *= 6.0;
    const double t2 = runExperiment(c).throughputRps;
    EXPECT_LT(t2, t1);
}

TEST(Sensitivity, HigherNetworkLatencyRaisesLatency)
{
    ExperimentConfig c = fastConfig();
    c.load.users = 30; // below saturation: latency-dominated regime
    const double l1 = runExperiment(c).latency.p50Ms;
    c.net.baseLatencyNs = 400 * kMicrosecond;
    const double l2 = runExperiment(c).latency.p50Ms;
    // Requests cross the loopback ~10 times; +380us per hop must show
    // up as several added milliseconds end to end.
    EXPECT_GT(l2, l1 + 2.0);
}

TEST(Sensitivity, SlowerMemoryNeverHelps)
{
    ExperimentConfig c = fastConfig();
    const double t1 = runExperiment(c).throughputRps;
    c.machine.mem.localLatencyNs *= 2.0;
    const double t2 = runExperiment(c).throughputRps;
    EXPECT_LE(t2, t1 * 1.02);
}

TEST(Sensitivity, LowerFrequencyLowersThroughput)
{
    ExperimentConfig c = fastConfig();
    const double t1 = runExperiment(c).throughputRps;
    c.machine.freq.boostGhz *= 0.6;
    c.machine.freq.allCoreGhz *= 0.6;
    const double t2 = runExperiment(c).throughputRps;
    EXPECT_LT(t2, t1 * 0.85);
}

TEST(Sensitivity, SmallerL3IncreasesMissRatio)
{
    ExperimentConfig c = fastConfig();
    const double m1 = runExperiment(c).total.l3MissRatio;
    c.machine.cache.l3BytesPerCcx /= 8;
    const double m2 = runExperiment(c).total.l3MissRatio;
    EXPECT_GT(m2, m1);
}

TEST(Sensitivity, MoreUsersNeverLowerSaturatedThroughputMuch)
{
    // Past saturation, throughput stays within a narrow band.
    ExperimentConfig c = fastConfig();
    c.load.users = 300;
    const double t1 = runExperiment(c).throughputRps;
    c.load.users = 600;
    const double t2 = runExperiment(c).throughputRps;
    // Deep overload costs some capacity to scheduling overhead, but
    // throughput must not collapse.
    EXPECT_NEAR(t2 / t1, 1.0, 0.3);
}

} // namespace
} // namespace microscale::core
