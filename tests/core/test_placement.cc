/**
 * @file
 * Tests for budget masks and placement planning.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/placement.hh"
#include "topo/presets.hh"

namespace microscale::core
{
namespace
{

namespace ts = teastore;

class PlacementTest : public ::testing::Test
{
  protected:
    PlacementTest() : machine_(topo::rome128()) {}

    topo::Machine machine_;
    DemandShares demand_;
    BaselineSizing sizing_;
};

TEST_F(PlacementTest, BudgetMaskFullMachine)
{
    EXPECT_EQ(budgetMask(machine_, 0, true), machine_.allCpus());
    EXPECT_EQ(budgetMask(machine_, 64, true).count(), 128u);
}

TEST_F(PlacementTest, BudgetMaskSmtOff)
{
    const CpuMask m = budgetMask(machine_, 0, false);
    EXPECT_EQ(m, machine_.primaryThreads());
    EXPECT_EQ(m.count(), 64u);
}

TEST_F(PlacementTest, BudgetMaskPartialCores)
{
    const CpuMask m = budgetMask(machine_, 16, true);
    EXPECT_EQ(m.count(), 32u);
    EXPECT_TRUE(m.test(15));
    EXPECT_FALSE(m.test(16));
    EXPECT_TRUE(m.test(64 + 15)); // sibling included
    EXPECT_FALSE(m.test(64 + 16));
}

TEST_F(PlacementTest, DemandNormalize)
{
    DemandShares d;
    d.webui = 2;
    d.auth = 1;
    d.persistence = 1;
    d.recommender = 1;
    d.image = 5;
    d.normalize();
    EXPECT_NEAR(d.webui + d.auth + d.persistence + d.recommender +
                    d.image,
                1.0, 1e-12);
    EXPECT_NEAR(d.image, 0.5, 1e-12);
}

TEST_F(PlacementTest, DemandOfLookup)
{
    EXPECT_DOUBLE_EQ(demand_.of(ts::names::kWebui), demand_.webui);
    EXPECT_EXIT(demand_.of("nope"), ::testing::ExitedWithCode(1),
                "demand share");
}

TEST_F(PlacementTest, OsDefaultPlanUsesWholeBudget)
{
    const CpuMask budget = budgetMask(machine_, 0, true);
    const PlacementPlan plan = buildPlacement(
        PlacementKind::OsDefault, machine_, budget, demand_, sizing_);
    EXPECT_EQ(plan.services.size(), 6u);
    const ServicePlan &webui = plan.services.at(ts::names::kWebui);
    EXPECT_EQ(webui.replicas, sizing_.webui.replicas);
    for (const CpuMask &m : webui.masks)
        EXPECT_EQ(m, budget);
    for (NodeId h : webui.homes)
        EXPECT_EQ(h, kInvalidNode);
}

TEST_F(PlacementTest, CcxAwareCoversAllCcxsDisjointly)
{
    const CpuMask budget = budgetMask(machine_, 0, true);
    const PlacementPlan plan = buildPlacement(
        PlacementKind::CcxAware, machine_, budget, demand_, sizing_);

    unsigned total_replicas = 0;
    CpuMask covered;
    for (const auto &[name, sp] : plan.services) {
        if (name == ts::names::kRegistry)
            continue; // co-located, shares a CCX
        total_replicas += sp.replicas;
        for (unsigned r = 0; r < sp.replicas; ++r) {
            const CpuMask &m = sp.masks[r];
            // Each replica owns exactly one CCX.
            EXPECT_EQ(m.count(), 8u);
            for (CpuId c : m)
                EXPECT_EQ(machine_.ccxOf(c), machine_.ccxOf(m.first()));
            // Disjoint from everything assigned so far.
            EXPECT_FALSE(covered.intersects(m));
            covered |= m;
            // Memory homed on the CCX's node.
            EXPECT_EQ(sp.homes[r], machine_.nodeOfCcx(
                                       machine_.ccxOf(m.first())));
        }
    }
    EXPECT_EQ(total_replicas, machine_.numCcxs());
    EXPECT_EQ(covered, machine_.allCpus());
}

TEST_F(PlacementTest, CcxAwareFollowsDemand)
{
    const CpuMask budget = budgetMask(machine_, 0, true);
    const PlacementPlan plan = buildPlacement(
        PlacementKind::CcxAware, machine_, budget, demand_, sizing_);
    // image (0.35) gets more CCXs than auth (0.08).
    EXPECT_GT(plan.services.at(ts::names::kImage).replicas,
              plan.services.at(ts::names::kAuth).replicas);
    // Everyone gets at least one.
    for (const auto &[name, sp] : plan.services)
        EXPECT_GE(sp.replicas, 1u) << name;
}

TEST_F(PlacementTest, RegistryColocatedWithAuth)
{
    const PlacementPlan plan = buildPlacement(
        PlacementKind::CcxAware, machine_,
        budgetMask(machine_, 0, true), demand_, sizing_);
    EXPECT_EQ(plan.services.at(ts::names::kRegistry).masks[0],
              plan.services.at(ts::names::kAuth).masks[0]);
}

TEST_F(PlacementTest, NodeAwareConfinesReplicasToNodes)
{
    const PlacementPlan plan = buildPlacement(
        PlacementKind::NodeAware, machine_,
        budgetMask(machine_, 0, true), demand_, sizing_);
    for (const auto &[name, sp] : plan.services) {
        for (unsigned r = 0; r < sp.replicas; ++r) {
            const NodeId home = sp.homes[r];
            ASSERT_NE(home, kInvalidNode);
            EXPECT_EQ(sp.masks[r], machine_.cpusOfNode(home)) << name;
        }
    }
    // Baseline replica counts preserved.
    EXPECT_EQ(plan.services.at(ts::names::kWebui).replicas,
              sizing_.webui.replicas);
}

TEST_F(PlacementTest, StripedMemSpreadsHomes)
{
    const PlacementPlan plan = buildPlacement(
        PlacementKind::CcxStripedMem, machine_,
        budgetMask(machine_, 0, true), demand_, sizing_);
    std::set<NodeId> homes;
    for (const auto &[name, sp] : plan.services) {
        for (NodeId h : sp.homes)
            homes.insert(h);
    }
    EXPECT_EQ(homes.size(), machine_.numNodes());
    // At least one replica must be remote from its CCX's node.
    bool any_remote = false;
    for (const auto &[name, sp] : plan.services) {
        for (unsigned r = 0; r < sp.replicas; ++r) {
            const NodeId local =
                machine_.nodeOfCcx(machine_.ccxOf(sp.masks[r].first()));
            if (sp.homes[r] != local)
                any_remote = true;
        }
    }
    EXPECT_TRUE(any_remote);
}

TEST_F(PlacementTest, SmallBudgetStillPlacesEveryService)
{
    // 8 cores (2 CCXs) for 5 services: CCXs must be shared.
    const CpuMask budget = budgetMask(machine_, 8, true);
    const PlacementPlan plan = buildPlacement(
        PlacementKind::CcxAware, machine_, budget, demand_, sizing_);
    for (const auto &[name, sp] : plan.services) {
        EXPECT_GE(sp.replicas, 1u);
        for (const CpuMask &m : sp.masks) {
            EXPECT_FALSE(m.empty());
            EXPECT_TRUE(m.subsetOf(budget)) << name;
        }
    }
}

TEST_F(PlacementTest, SizeAppFromPlanCopiesCounts)
{
    const PlacementPlan plan = buildPlacement(
        PlacementKind::CcxAware, machine_,
        budgetMask(machine_, 0, true), demand_, sizing_);
    teastore::AppParams params;
    sizeAppFromPlan(params, plan);
    EXPECT_EQ(params.webui.replicas,
              plan.services.at(ts::names::kWebui).replicas);
    EXPECT_EQ(params.image.replicas,
              plan.services.at(ts::names::kImage).replicas);
}

TEST_F(PlacementTest, DescribeMentionsEveryService)
{
    const PlacementPlan plan = buildPlacement(
        PlacementKind::CcxAware, machine_,
        budgetMask(machine_, 0, true), demand_, sizing_);
    const std::string desc = plan.describe();
    for (const char *name :
         {ts::names::kWebui, ts::names::kAuth, ts::names::kPersistence,
          ts::names::kRecommender, ts::names::kImage,
          ts::names::kRegistry}) {
        EXPECT_NE(desc.find(name), std::string::npos) << name;
    }
}

TEST_F(PlacementTest, PlacementNamesUnique)
{
    std::set<std::string> names;
    for (PlacementKind k : allPlacements())
        names.insert(placementName(k));
    EXPECT_EQ(names.size(), allPlacements().size());
}

TEST_F(PlacementTest, DeathOnEmptyBudget)
{
    EXPECT_EXIT(buildPlacement(PlacementKind::CcxAware, machine_,
                               CpuMask(), demand_, sizing_),
                ::testing::ExitedWithCode(1), "empty");
}

/**
 * Property: for random demand shares and random budgets, every
 * policy's plan is structurally valid - every service present, masks
 * non-empty and within budget, CCX-aware masks confined to one CCX,
 * homes valid nodes (or first-touch).
 */
class PlacementProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PlacementProperty, PlansAreAlwaysValid)
{
    Rng rng(GetParam());
    topo::Machine machine(topo::rome128());
    BaselineSizing sizing;

    for (int round = 0; round < 20; ++round) {
        DemandShares d;
        d.webui = rng.uniformReal(0.01, 1.0);
        d.auth = rng.uniformReal(0.01, 1.0);
        d.persistence = rng.uniformReal(0.01, 1.0);
        d.recommender = rng.uniformReal(0.01, 1.0);
        d.image = rng.uniformReal(0.01, 1.0);
        const unsigned cores =
            static_cast<unsigned>(rng.uniformInt(4, 64));
        const bool smt = rng.chance(0.5);
        const CpuMask budget = budgetMask(machine, cores, smt);

        for (PlacementKind kind : allPlacements()) {
            const PlacementPlan plan =
                buildPlacement(kind, machine, budget, d, sizing);
            EXPECT_EQ(plan.services.size(), 6u);
            for (const auto &[name, sp] : plan.services) {
                ASSERT_GE(sp.replicas, 1u) << name;
                ASSERT_EQ(sp.masks.size(), sp.replicas) << name;
                ASSERT_EQ(sp.homes.size(), sp.replicas) << name;
                for (unsigned r = 0; r < sp.replicas; ++r) {
                    EXPECT_FALSE(sp.masks[r].empty()) << name;
                    EXPECT_TRUE(sp.masks[r].subsetOf(budget)) << name;
                    if (sp.homes[r] != kInvalidNode)
                        EXPECT_LT(sp.homes[r], machine.numNodes());
                    if (kind == PlacementKind::CcxAware ||
                        kind == PlacementKind::CcxStripedMem) {
                        const CcxId ccx =
                            machine.ccxOf(sp.masks[r].first());
                        for (CpuId c : sp.masks[r])
                            EXPECT_EQ(machine.ccxOf(c), ccx) << name;
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementProperty,
                         ::testing::Values(11, 22, 33, 44));

} // namespace
} // namespace microscale::core
