/**
 * @file
 * Tests for the parallel sweep harness: parallel execution must be
 * bit-identical to serial, per-point seeding deterministic, and a
 * failing point must not poison the rest of the sweep.
 */

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/sweep.hh"
#include "teastore/chaos.hh"
#include "teastore/criticality.hh"

namespace microscale::core
{
namespace
{

/** A fast config on the small machine. */
ExperimentConfig
fastConfig()
{
    ExperimentConfig c;
    c.machine = topo::small8();
    c.app.store.categories = 4;
    c.app.store.productsPerCategory = 10;
    c.app.store.users = 20;
    c.sizing.webui = {1, 8};
    c.sizing.auth = {1, 4};
    c.sizing.persistence = {1, 8};
    c.sizing.recommender = {1, 2};
    c.sizing.image = {1, 8};
    c.sizing.registry = {1, 1};
    c.load.users = 40;
    c.load.meanThink = 50 * kMillisecond;
    c.warmup = 100 * kMillisecond;
    c.measure = 200 * kMillisecond;
    return c;
}

/** A fig01-style sweep: two placements crossed with three budgets. */
std::vector<SweepPoint>
scaleupPoints()
{
    std::vector<SweepPoint> points;
    for (PlacementKind kind :
         {PlacementKind::OsDefault, PlacementKind::CcxAware}) {
        for (unsigned cores : {2u, 4u, 8u}) {
            SweepPoint p;
            p.label = std::string(placementName(kind)) + "/" +
                      std::to_string(cores) + "c";
            p.config = fastConfig();
            p.config.placement = kind;
            p.config.cores = cores;
            p.config.load.users = 10 * cores;
            points.push_back(std::move(p));
        }
    }
    return points;
}

std::vector<SweepOutcome>
runWithJobs(const std::vector<SweepPoint> &points, unsigned jobs)
{
    SweepOptions so;
    so.jobs = jobs;
    so.progress = false;
    return SweepRunner(so).run(points);
}

TEST(Sweep, ParallelMatchesSerialBitwise)
{
    const std::vector<SweepPoint> points = scaleupPoints();
    const std::vector<SweepOutcome> serial = runWithJobs(points, 1);
    const std::vector<SweepOutcome> parallel = runWithJobs(points, 4);
    ASSERT_EQ(serial.size(), points.size());
    ASSERT_EQ(parallel.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_TRUE(serial[i].ok) << serial[i].error;
        EXPECT_TRUE(parallel[i].ok) << parallel[i].error;
        EXPECT_EQ(serial[i].label, points[i].label);
        EXPECT_EQ(parallel[i].label, points[i].label);
        const RunResult &a = serial[i].result;
        const RunResult &b = parallel[i].result;
        EXPECT_DOUBLE_EQ(a.throughputRps, b.throughputRps);
        EXPECT_DOUBLE_EQ(a.latency.p99Ms, b.latency.p99Ms);
        EXPECT_DOUBLE_EQ(a.cpuUtilization, b.cpuUtilization);
        EXPECT_DOUBLE_EQ(a.total.csPerSec, b.total.csPerSec);
        EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
    }
}

TEST(Sweep, MatchesDirectRunExperiment)
{
    // The harness must not perturb the simulation: a sweep point is
    // exactly runExperiment on its config.
    SweepPoint p;
    p.label = "direct";
    p.config = fastConfig();
    const std::vector<SweepOutcome> runs = runWithJobs({p}, 2);
    const RunResult direct = runExperiment(p.config);
    ASSERT_TRUE(runs[0].ok);
    EXPECT_DOUBLE_EQ(runs[0].result.throughputRps,
                     direct.throughputRps);
    EXPECT_DOUBLE_EQ(runs[0].result.latency.p99Ms,
                     direct.latency.p99Ms);
}

TEST(Sweep, RepeatRunsAreDeterministic)
{
    const std::vector<SweepPoint> points = scaleupPoints();
    const std::vector<SweepOutcome> a = runWithJobs(points, 4);
    const std::vector<SweepOutcome> b = runWithJobs(points, 4);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].result.throughputRps,
                         b[i].result.throughputRps);
        EXPECT_DOUBLE_EQ(a[i].result.latency.p99Ms,
                         b[i].result.latency.p99Ms);
    }
}

/** The fig12-style chaos grid on the fast config. */
std::vector<SweepPoint>
chaosPoints()
{
    std::vector<SweepPoint> points;
    const ExperimentConfig base = fastConfig();
    for (teastore::ChaosScenario s : teastore::allChaosScenarios()) {
        for (bool resilient : {false, true}) {
            SweepPoint p;
            p.label = std::string(teastore::chaosName(s)) + "/" +
                      (resilient ? "resilient" : "none");
            p.config = base;
            p.config.faults =
                teastore::makeChaosScript(s, base.warmup, base.measure);
            if (resilient) {
                p.config.resilience = teastore::resilientPolicy();
                p.config.app.degradedFallbacks = true;
            }
            points.push_back(std::move(p));
        }
    }
    return points;
}

TEST(Sweep, FaultScriptsDeterministicAcrossJobsAndRepeats)
{
    // Scripted faults + resilience must preserve the harness's core
    // guarantee: identical seeds and scripts give bit-identical
    // results whether points run serially, in parallel, or again.
    const std::vector<SweepPoint> points = chaosPoints();
    const std::vector<SweepOutcome> serial = runWithJobs(points, 1);
    const std::vector<SweepOutcome> parallel = runWithJobs(points, 4);
    const std::vector<SweepOutcome> repeat = runWithJobs(points, 4);
    ASSERT_EQ(serial.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        const RunResult &a = serial[i].result;
        for (const RunResult *b :
             {&parallel[i].result, &repeat[i].result}) {
            EXPECT_DOUBLE_EQ(a.throughputRps, b->throughputRps);
            EXPECT_DOUBLE_EQ(a.latency.p99Ms, b->latency.p99Ms);
            EXPECT_EQ(a.eventsProcessed, b->eventsProcessed);
            EXPECT_DOUBLE_EQ(a.resilience.goodputRps,
                             b->resilience.goodputRps);
            EXPECT_EQ(a.resilience.timeoutCount, b->resilience.timeoutCount);
            EXPECT_EQ(a.resilience.unavailableCount,
                      b->resilience.unavailableCount);
            EXPECT_EQ(a.resilience.degradedCount, b->resilience.degradedCount);
            EXPECT_EQ(a.resilience.retries, b->resilience.retries);
            EXPECT_EQ(a.resilience.shed, b->resilience.shed);
            EXPECT_EQ(a.resilience.deadlineDrops, b->resilience.deadlineDrops);
        }
    }
    // The crash scenario actually bites: blind round-robin sees
    // failures, the resilient policy routes around them.
    const RunResult &crash_none = serial[2].result;
    const RunResult &crash_res = serial[3].result;
    EXPECT_GT(crash_none.resilience.unavailableCount, 0u);
    EXPECT_GT(crash_res.resilience.goodputRps,
              crash_none.resilience.goodputRps);
}

/** An overloaded grid (open-loop past capacity) x overload arms. */
std::vector<SweepPoint>
overloadPoints()
{
    std::vector<SweepPoint> points;
    ExperimentConfig base = fastConfig();
    // Saturating open-loop arrivals so admission and shedding engage.
    base.openLoopRps = 3000.0;
    for (const char *arm : {"none", "aware"}) {
        for (double rps : {1000.0, 3000.0}) {
            SweepPoint p;
            p.label = std::string(arm) + "/" +
                      std::to_string(static_cast<int>(rps));
            p.config = base;
            p.config.openLoopRps = rps;
            if (std::string(arm) == "aware")
                p.config.overload = teastore::overloadAwarePolicy();
            points.push_back(std::move(p));
        }
    }
    return points;
}

TEST(Sweep, OverloadLayerDeterministicAcrossJobsAndRepeats)
{
    // Admission, CoDel, criticality tiers and the brownout RNG must
    // all preserve the harness's guarantee: bit-identical results
    // whether points run serially, in parallel, or again.
    const std::vector<SweepPoint> points = overloadPoints();
    const std::vector<SweepOutcome> serial = runWithJobs(points, 1);
    const std::vector<SweepOutcome> parallel = runWithJobs(points, 4);
    const std::vector<SweepOutcome> repeat = runWithJobs(points, 4);
    ASSERT_EQ(serial.size(), points.size());
    bool saw_rejections = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        const RunResult &a = serial[i].result;
        for (const RunResult *b :
             {&parallel[i].result, &repeat[i].result}) {
            EXPECT_DOUBLE_EQ(a.throughputRps, b->throughputRps);
            EXPECT_DOUBLE_EQ(a.latency.p99Ms, b->latency.p99Ms);
            EXPECT_EQ(a.eventsProcessed, b->eventsProcessed);
            EXPECT_EQ(a.resilience.rejectedCount,
                      b->resilience.rejectedCount);
            EXPECT_EQ(a.overload.shedCritical, b->overload.shedCritical);
            EXPECT_EQ(a.overload.shedNormal, b->overload.shedNormal);
            EXPECT_EQ(a.overload.shedSheddable,
                      b->overload.shedSheddable);
            EXPECT_EQ(a.overload.codelDrops, b->overload.codelDrops);
            EXPECT_EQ(a.overload.brownoutSkips,
                      b->overload.brownoutSkips);
            EXPECT_DOUBLE_EQ(a.overload.limitFinal,
                             b->overload.limitFinal);
            EXPECT_DOUBLE_EQ(a.overload.dimmerFinal,
                             b->overload.dimmerFinal);
        }
        if (a.overload.active && a.overload.rejectedTotal > 0)
            saw_rejections = true;
    }
    // The overloaded aware arm actually exercised the layer.
    EXPECT_TRUE(saw_rejections);
}

TEST(Sweep, InactiveOverloadDefaultsAreFreeOfSideEffects)
{
    // A run with the overload knobs at their defaults must be
    // event-identical to one that never heard of them.
    SweepPoint plain;
    plain.label = "plain";
    plain.config = fastConfig();
    SweepPoint wired;
    wired.label = "wired";
    wired.config = fastConfig();
    wired.config.overload = svc::OverloadConfig{};
    const std::vector<SweepOutcome> runs =
        runWithJobs({plain, wired}, 2);
    ASSERT_TRUE(runs[0].ok);
    ASSERT_TRUE(runs[1].ok);
    EXPECT_EQ(runs[0].result.eventsProcessed,
              runs[1].result.eventsProcessed);
    EXPECT_DOUBLE_EQ(runs[0].result.throughputRps,
                     runs[1].result.throughputRps);
    EXPECT_FALSE(runs[1].result.overload.active);
    EXPECT_FALSE(runs[1].result.resilience.active);
}

TEST(Sweep, HealthyResilienceDefaultsAreFreeOfSideEffects)
{
    // A healthy run with the resilience knobs at their defaults must
    // be event-identical to one that never heard of them.
    SweepPoint plain;
    plain.label = "plain";
    plain.config = fastConfig();
    SweepPoint wired;
    wired.label = "wired";
    wired.config = fastConfig();
    wired.config.resilience = svc::ResilienceConfig{};
    wired.config.faults = svc::FaultScript{};
    const std::vector<SweepOutcome> runs =
        runWithJobs({plain, wired}, 2);
    ASSERT_TRUE(runs[0].ok);
    ASSERT_TRUE(runs[1].ok);
    EXPECT_EQ(runs[0].result.eventsProcessed,
              runs[1].result.eventsProcessed);
    EXPECT_DOUBLE_EQ(runs[0].result.throughputRps,
                     runs[1].result.throughputRps);
    EXPECT_FALSE(runs[1].result.resilience.active);
}

TEST(Sweep, FailedPointDoesNotPoisonOthers)
{
    std::vector<SweepPoint> points;
    for (int i = 0; i < 4; ++i) {
        SweepPoint p;
        p.label = "p" + std::to_string(i);
        p.config = fastConfig();
        if (i == 1) {
            p.runner = [](const ExperimentConfig &) -> RunResult {
                throw std::runtime_error("synthetic failure");
            };
        } else {
            const double tput = 100.0 * (i + 1);
            p.runner = [tput](const ExperimentConfig &) {
                RunResult r;
                r.throughputRps = tput;
                return r;
            };
        }
        points.push_back(std::move(p));
    }
    const std::vector<SweepOutcome> runs = runWithJobs(points, 2);
    ASSERT_EQ(runs.size(), 4u);
    EXPECT_TRUE(runs[0].ok);
    EXPECT_FALSE(runs[1].ok);
    EXPECT_NE(runs[1].error.find("synthetic failure"),
              std::string::npos);
    EXPECT_TRUE(runs[2].ok);
    EXPECT_TRUE(runs[3].ok);
    EXPECT_DOUBLE_EQ(runs[0].result.throughputRps, 100.0);
    EXPECT_DOUBLE_EQ(runs[2].result.throughputRps, 300.0);
    EXPECT_DOUBLE_EQ(runs[3].result.throughputRps, 400.0);
}

TEST(Sweep, RefineRoundsRecordTrace)
{
    SweepPoint p;
    p.label = "refined";
    p.config = fastConfig();
    p.config.placement = PlacementKind::CcxAware;
    p.refineRounds = 1;
    const std::vector<SweepOutcome> runs = runWithJobs({p}, 1);
    ASSERT_TRUE(runs[0].ok);
    // Seed round plus one refinement.
    EXPECT_EQ(runs[0].refine.perRound.size(), 2u);
    const DemandShares &d = runs[0].refine.final;
    EXPECT_NEAR(d.webui + d.auth + d.persistence + d.recommender +
                    d.image,
                1.0, 1e-9);
}

TEST(Sweep, ResolveJobsHonorsEnvAndFloor)
{
    // Explicit request wins.
    EXPECT_EQ(resolveJobs(3), 3u);
    // Environment supplies the default when no explicit request.
    ASSERT_EQ(setenv("MICROSCALE_BENCH_JOBS", "5", 1), 0);
    EXPECT_EQ(resolveJobs(0), 5u);
    ASSERT_EQ(setenv("MICROSCALE_BENCH_JOBS", "bogus", 1), 0);
    EXPECT_GE(resolveJobs(0), 1u);
    ASSERT_EQ(unsetenv("MICROSCALE_BENCH_JOBS"), 0);
    // Hardware fallback is always at least one worker.
    EXPECT_GE(resolveJobs(0), 1u);
}

} // namespace
} // namespace microscale::core
