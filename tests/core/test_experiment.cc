/**
 * @file
 * Tests for the experiment runner and demand measurement (fast
 * configurations on small machines).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/tuner.hh"

namespace microscale::core
{
namespace
{

/** A fast config on the small machine. */
ExperimentConfig
fastConfig()
{
    ExperimentConfig c;
    c.machine = topo::small8();
    c.app.store.categories = 4;
    c.app.store.productsPerCategory = 10;
    c.app.store.users = 20;
    c.sizing.webui = {1, 8};
    c.sizing.auth = {1, 4};
    c.sizing.persistence = {1, 8};
    c.sizing.recommender = {1, 2};
    c.sizing.image = {1, 8};
    c.sizing.registry = {1, 1};
    c.load.users = 40;
    c.load.meanThink = 50 * kMillisecond;
    c.warmup = 200 * kMillisecond;
    c.measure = 400 * kMillisecond;
    return c;
}

TEST(Experiment, ProducesCompleteResult)
{
    const RunResult r = runExperiment(fastConfig());
    EXPECT_GT(r.throughputRps, 0.0);
    EXPECT_GT(r.latency.count, 0u);
    EXPECT_GT(r.latency.p99Ms, r.latency.p50Ms * 0.99);
    EXPECT_EQ(r.perOp.size(), teastore::kNumOps);
    EXPECT_EQ(r.servicePerf.size(), 6u);
    EXPECT_GT(r.cpuUtilization, 0.0);
    EXPECT_LE(r.cpuUtilization, 1.0 + 1e-9);
    EXPECT_EQ(r.budgetCpus, 8u);
    EXPECT_GT(r.eventsProcessed, 0u);
    EXPECT_GT(r.avgFreqGhz, 0.0);
    EXPECT_GT(r.total.ipc, 0.0);
}

TEST(Experiment, DeterministicForSameSeed)
{
    const RunResult a = runExperiment(fastConfig());
    const RunResult b = runExperiment(fastConfig());
    EXPECT_DOUBLE_EQ(a.throughputRps, b.throughputRps);
    EXPECT_DOUBLE_EQ(a.latency.p99Ms, b.latency.p99Ms);
    EXPECT_EQ(a.sched.contextSwitches, b.sched.contextSwitches);
}

TEST(Experiment, SeedChangesOutcome)
{
    ExperimentConfig c = fastConfig();
    const RunResult a = runExperiment(c);
    c.seed = 99;
    const RunResult b = runExperiment(c);
    EXPECT_NE(a.throughputRps, b.throughputRps);
}

TEST(Experiment, MoreCoresMoreThroughputAtSaturation)
{
    ExperimentConfig c = fastConfig();
    c.load.users = 200;
    c.load.meanThink = 10 * kMillisecond;
    c.cores = 2;
    const RunResult small = runExperiment(c);
    c.cores = 4;
    const RunResult big = runExperiment(c);
    EXPECT_EQ(small.budgetCpus, 4u);
    EXPECT_EQ(big.budgetCpus, 8u);
    EXPECT_GT(big.throughputRps, small.throughputRps * 1.2);
}

TEST(Experiment, SmtBudgetAddsCapacity)
{
    ExperimentConfig c = fastConfig();
    c.load.users = 200;
    c.load.meanThink = 10 * kMillisecond;
    c.smt = false;
    const RunResult off = runExperiment(c);
    c.smt = true;
    const RunResult on = runExperiment(c);
    EXPECT_EQ(off.budgetCpus, 4u);
    EXPECT_EQ(on.budgetCpus, 8u);
    // SMT adds capacity, but far less than 2x.
    EXPECT_GT(on.throughputRps, off.throughputRps * 1.05);
    EXPECT_LT(on.throughputRps, off.throughputRps * 1.8);
}

TEST(Experiment, OpenLoopModeRuns)
{
    ExperimentConfig c = fastConfig();
    c.openLoopRps = 100.0;
    const RunResult r = runExperiment(c);
    EXPECT_GT(r.throughputRps, 50.0);
    EXPECT_LT(r.throughputRps, 150.0);
}

TEST(Experiment, MeasureDemandNormalized)
{
    const DemandShares d = measureDemand(fastConfig());
    const double sum =
        d.webui + d.auth + d.persistence + d.recommender + d.image;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // WebUI and image dominate the browse profile's CPU demand.
    EXPECT_GT(d.webui, d.auth);
    EXPECT_GT(d.image, d.recommender);
}

TEST(Experiment, SummarizeMentionsKeyFields)
{
    const RunResult r = runExperiment(fastConfig());
    const std::string s = summarize(r);
    EXPECT_NE(s.find("tput="), std::string::npos);
    EXPECT_NE(s.find("p99="), std::string::npos);
    EXPECT_NE(s.find("util="), std::string::npos);
}

TEST(Experiment, PerOpCountsSumToTotal)
{
    const RunResult r = runExperiment(fastConfig());
    std::uint64_t sum = 0;
    for (const auto &[name, lat] : r.perOp)
        sum += lat.count;
    EXPECT_EQ(sum, r.latency.count);
}

TEST(Experiment, PlacementPoliciesAllRun)
{
    ExperimentConfig c = fastConfig();
    for (PlacementKind k : allPlacements()) {
        c.placement = k;
        const RunResult r = runExperiment(c);
        EXPECT_GT(r.throughputRps, 0.0) << placementName(k);
        EXPECT_EQ(r.plan.kind, k);
    }
}

TEST(Experiment, BreakdownCoversWebuiOps)
{
    const RunResult r = runExperiment(fastConfig());
    const auto &webui = r.breakdown.at(teastore::names::kWebui);
    EXPECT_FALSE(webui.empty());
    for (const auto &[op, b] : webui) {
        EXPECT_GT(b.count, 0u) << op;
        EXPECT_GT(b.serviceTimeMeanMs, 0.0) << op;
        EXPECT_GT(b.computeMeanMs, 0.0) << op;
        // Components never exceed the total.
        EXPECT_LE(b.queueWaitMeanMs + b.computeMeanMs + b.stallMeanMs,
                  b.serviceTimeMeanMs * 1.01)
            << op;
    }
}

TEST(Experiment, DemandFromRunIsNormalized)
{
    const RunResult r = runExperiment(fastConfig());
    const DemandShares d = demandFromRun(r);
    EXPECT_NEAR(d.webui + d.auth + d.persistence + d.recommender +
                    d.image,
                1.0, 1e-9);
}

TEST(Experiment, RunRefinedIsDeterministic)
{
    ExperimentConfig c = fastConfig();
    c.placement = PlacementKind::CcxAware;
    RefineTrace t1, t2;
    const RunResult a = runRefined(c, 1, &t1);
    const RunResult b = runRefined(c, 1, &t2);
    EXPECT_DOUBLE_EQ(a.throughputRps, b.throughputRps);
    EXPECT_DOUBLE_EQ(t1.final.webui, t2.final.webui);
}

TEST(Experiment, RunRefinedTraceRecordsPerRoundShares)
{
    ExperimentConfig c = fastConfig();
    c.placement = PlacementKind::CcxAware;
    RefineTrace trace;
    runRefined(c, 2, &trace);
    // Round 0 is the seed demand; rounds 1..N the refined partitions.
    ASSERT_EQ(trace.perRound.size(), 3u);
    EXPECT_DOUBLE_EQ(trace.perRound[0].webui, c.demand.webui);
    for (const DemandShares &d : trace.perRound) {
        EXPECT_NEAR(d.webui + d.auth + d.persistence + d.recommender +
                        d.image,
                    1.0, 1e-9);
    }
}

TEST(Experiment, CustomMixShiftsOpCounts)
{
    // A mix that never leaves Home.
    std::array<std::array<double, teastore::kNumOps>, teastore::kNumOps>
        t{};
    for (auto &row : t)
        row[0] = 1.0;
    ExperimentConfig c = fastConfig();
    c.mix = loadgen::BrowseMix(t);
    const RunResult r = runExperiment(c);
    EXPECT_GT(r.perOp.at("home").count, 0u);
    EXPECT_EQ(r.perOp.at("product").count, 0u);
    EXPECT_EQ(r.perOp.at("checkout").count, 0u);
}

TEST(Tuner, AcceptsOnlyImprovingSteps)
{
    ExperimentConfig c = fastConfig();
    c.warmup = 100 * kMillisecond;
    c.measure = 200 * kMillisecond;
    c.load.users = 100;
    c.load.meanThink = 20 * kMillisecond;
    TunerParams tp;
    tp.maxRounds = 1;
    tp.maxReplicasPerService = 2;
    const TunerResult r = tuneReplicas(c, tp);
    EXPECT_GE(r.steps.size(), 1u);
    EXPECT_GT(r.throughputRps, 0.0);
    // The reported best throughput is the max over accepted steps.
    for (const TunerStep &s : r.steps) {
        if (s.accepted)
            EXPECT_LE(s.throughputRps, r.throughputRps + 1e-9);
    }
    // Replica counts never exceed the cap.
    EXPECT_LE(r.best.webui.replicas, 2u);
}

} // namespace
} // namespace microscale::core
