/**
 * @file
 * Tests for the JSON export of RunResult.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/json.hh"

namespace microscale::core
{
namespace
{

ExperimentConfig
fastConfig()
{
    ExperimentConfig c;
    c.machine = topo::small8();
    c.app.store.categories = 4;
    c.app.store.productsPerCategory = 10;
    c.app.store.users = 20;
    c.sizing.webui = {1, 8};
    c.sizing.auth = {1, 4};
    c.sizing.persistence = {1, 8};
    c.sizing.recommender = {1, 2};
    c.sizing.image = {1, 8};
    c.sizing.registry = {1, 1};
    c.load.users = 40;
    c.load.meanThink = 50 * kMillisecond;
    c.warmup = 150 * kMillisecond;
    c.measure = 300 * kMillisecond;
    return c;
}

/** Count balanced braces/brackets and validate basic wellformedness. */
bool
balanced(const std::string &s)
{
    int braces = 0, brackets = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '"' && (i == 0 || s[i - 1] != '\\'))
            in_string = !in_string;
        if (in_string)
            continue;
        if (c == '{')
            ++braces;
        if (c == '}')
            --braces;
        if (c == '[')
            ++brackets;
        if (c == ']')
            --brackets;
        if (braces < 0 || brackets < 0)
            return false;
    }
    return braces == 0 && brackets == 0 && !in_string;
}

TEST(Json, WellFormedAndComplete)
{
    const RunResult r = runExperiment(fastConfig());
    const std::string j = toJson(r);
    EXPECT_TRUE(balanced(j)) << j.substr(0, 400);
    for (const char *key :
         {"\"throughput_rps\"", "\"latency\"", "\"per_op\"",
          "\"services\"", "\"total\"", "\"sched\"", "\"breakdown\"",
          "\"webui\"", "\"placement\"", "\"p99_ms\"",
          "\"context_switches\""}) {
        EXPECT_NE(j.find(key), std::string::npos) << key;
    }
    // No trailing commas (",}" or ",]") anywhere.
    EXPECT_EQ(j.find(",}"), std::string::npos);
    EXPECT_EQ(j.find(",]"), std::string::npos);
}

TEST(Json, DeterministicForSameRun)
{
    const RunResult r = runExperiment(fastConfig());
    EXPECT_EQ(toJson(r), toJson(r));
}

TEST(Json, ReflectsResultValues)
{
    RunResult r = runExperiment(fastConfig());
    const std::string j = toJson(r);
    // The throughput value appears verbatim (setprecision(10)).
    std::ostringstream expect;
    expect << std::setprecision(10) << r.throughputRps;
    EXPECT_NE(j.find(expect.str()), std::string::npos);
}

TEST(Json, ParseRoundTripsRunResult)
{
    const RunResult r = runExperiment(fastConfig());
    const JsonValue v = parseJson(toJson(r));
    ASSERT_TRUE(v.isObject());
    const JsonValue &tput = v.at("throughput_rps");
    ASSERT_TRUE(tput.isNumber());
    // The writer emits 10 significant digits.
    EXPECT_NEAR(tput.numberValue, r.throughputRps,
                1e-9 * std::abs(r.throughputRps) + 1e-12);
    const JsonValue &p99 = v.at("latency").at("p99_ms");
    ASSERT_TRUE(p99.isNumber());
    EXPECT_NEAR(p99.numberValue, r.latency.p99Ms,
                1e-9 * std::abs(r.latency.p99Ms) + 1e-12);
    // Service map keys survive the trip.
    const JsonValue &services = v.at("services");
    ASSERT_TRUE(services.isObject());
    EXPECT_NE(services.find("webui"), nullptr);
}

TEST(Json, ParseHandlesEscapesAndLiterals)
{
    const JsonValue v = parseJson(
        "{\"s\": \"a\\\"b\\\\c\\n\", \"t\": true, \"f\": false,"
        " \"n\": null, \"a\": [1, -2.5, 3e2]}");
    EXPECT_EQ(v.at("s").stringValue, "a\"b\\c\n");
    EXPECT_TRUE(v.at("t").boolValue);
    EXPECT_FALSE(v.at("f").boolValue);
    EXPECT_EQ(v.at("n").kind, JsonValue::Kind::Null);
    ASSERT_EQ(v.at("a").elements.size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("a").elements[1].numberValue, -2.5);
    EXPECT_DOUBLE_EQ(v.at("a").elements[2].numberValue, 300.0);
}

TEST(Json, NonFiniteNumbersEmitNull)
{
    // A broken metric pipeline (0/0, log of 0) must not corrupt the
    // document: the writer emits null for NaN/Inf, never the raw
    // "nan"/"inf" literals no parser accepts.
    RunResult r;
    r.throughputRps = std::nan("");
    r.latency.meanMs = std::numeric_limits<double>::infinity();
    r.latency.p50Ms = -std::numeric_limits<double>::infinity();
    const std::string j = toJson(r);
    EXPECT_EQ(j.find("nan"), std::string::npos);
    EXPECT_EQ(j.find("inf"), std::string::npos);
    const JsonValue v = parseJson(j);
    EXPECT_EQ(v.at("throughput_rps").kind, JsonValue::Kind::Null);
    EXPECT_EQ(v.at("latency").at("mean_ms").kind, JsonValue::Kind::Null);
    EXPECT_EQ(v.at("latency").at("p50_ms").kind, JsonValue::Kind::Null);
    // Finite neighbors are untouched.
    EXPECT_TRUE(v.at("latency").at("p99_ms").isNumber());
}

TEST(Json, ParseRejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\": 1,}"), std::runtime_error);
    EXPECT_THROW(parseJson("[1, 2"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\": 1} trailing"), std::runtime_error);
    EXPECT_THROW(parseJson("\"unterminated"), std::runtime_error);
}

TEST(Json, EscapeProducesValidStrings)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    const JsonValue v =
        parseJson("\"" + jsonEscape("mix: \"q\" \\ \n\t\x01") + "\"");
    EXPECT_EQ(v.stringValue, "mix: \"q\" \\ \n\t\x01");
}

} // namespace
} // namespace microscale::core
