/**
 * @file
 * Tests for the JSON export of RunResult.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/json.hh"

namespace microscale::core
{
namespace
{

ExperimentConfig
fastConfig()
{
    ExperimentConfig c;
    c.machine = topo::small8();
    c.app.store.categories = 4;
    c.app.store.productsPerCategory = 10;
    c.app.store.users = 20;
    c.sizing.webui = {1, 8};
    c.sizing.auth = {1, 4};
    c.sizing.persistence = {1, 8};
    c.sizing.recommender = {1, 2};
    c.sizing.image = {1, 8};
    c.sizing.registry = {1, 1};
    c.load.users = 40;
    c.load.meanThink = 50 * kMillisecond;
    c.warmup = 150 * kMillisecond;
    c.measure = 300 * kMillisecond;
    return c;
}

/** Count balanced braces/brackets and validate basic wellformedness. */
bool
balanced(const std::string &s)
{
    int braces = 0, brackets = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '"' && (i == 0 || s[i - 1] != '\\'))
            in_string = !in_string;
        if (in_string)
            continue;
        if (c == '{')
            ++braces;
        if (c == '}')
            --braces;
        if (c == '[')
            ++brackets;
        if (c == ']')
            --brackets;
        if (braces < 0 || brackets < 0)
            return false;
    }
    return braces == 0 && brackets == 0 && !in_string;
}

TEST(Json, WellFormedAndComplete)
{
    const RunResult r = runExperiment(fastConfig());
    const std::string j = toJson(r);
    EXPECT_TRUE(balanced(j)) << j.substr(0, 400);
    for (const char *key :
         {"\"throughput_rps\"", "\"latency\"", "\"per_op\"",
          "\"services\"", "\"total\"", "\"sched\"", "\"breakdown\"",
          "\"webui\"", "\"placement\"", "\"p99_ms\"",
          "\"context_switches\""}) {
        EXPECT_NE(j.find(key), std::string::npos) << key;
    }
    // No trailing commas (",}" or ",]") anywhere.
    EXPECT_EQ(j.find(",}"), std::string::npos);
    EXPECT_EQ(j.find(",]"), std::string::npos);
}

TEST(Json, DeterministicForSameRun)
{
    const RunResult r = runExperiment(fastConfig());
    EXPECT_EQ(toJson(r), toJson(r));
}

TEST(Json, ReflectsResultValues)
{
    RunResult r = runExperiment(fastConfig());
    const std::string j = toJson(r);
    // The throughput value appears verbatim (setprecision(10)).
    std::ostringstream expect;
    expect << std::setprecision(10) << r.throughputRps;
    EXPECT_NE(j.find(expect.str()), std::string::npos);
}

} // namespace
} // namespace microscale::core
