/**
 * @file
 * Tests for the loopback network model.
 */

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "net/network.hh"
#include "sim/simulation.hh"

namespace microscale::net
{
namespace
{

TEST(Network, DeliversAfterLatency)
{
    sim::Simulation sim;
    NetParams p;
    p.jitterCv = 0.0;
    Network net(sim, p, 1);
    Tick delivered = 0;
    net.send(0, [&] { delivered = sim.now(); });
    sim.run();
    EXPECT_EQ(delivered, p.baseLatencyNs);
}

TEST(Network, PayloadAddsPerKibLatency)
{
    sim::Simulation sim;
    NetParams p;
    p.jitterCv = 0.0;
    Network net(sim, p, 1);
    EXPECT_EQ(net.sampleLatency(0), p.baseLatencyNs);
    EXPECT_EQ(net.sampleLatency(2048), p.baseLatencyNs + 2 * p.perKibNs);
}

TEST(Network, JitterVariesLatency)
{
    sim::Simulation sim;
    NetParams p;
    p.jitterCv = 0.2;
    Network net(sim, p, 1);
    SampleStats s;
    for (int i = 0; i < 20000; ++i)
        s.add(static_cast<double>(net.sampleLatency(1024)));
    const double nominal =
        static_cast<double>(p.baseLatencyNs + p.perKibNs);
    EXPECT_NEAR(s.mean(), nominal, nominal * 0.02);
    EXPECT_GT(s.stddev(), 0.0);
    EXPECT_NEAR(s.stddev() / s.mean(), 0.2, 0.03);
}

TEST(Network, CountsTraffic)
{
    sim::Simulation sim;
    Network net(sim, NetParams{}, 1);
    net.send(100, [] {});
    net.send(200, [] {});
    EXPECT_EQ(net.stats().messages, 2u);
    EXPECT_EQ(net.stats().bytes, 300u);
    sim.run();
}

TEST(Network, InFlightMessagesAreIndependent)
{
    sim::Simulation sim;
    NetParams p;
    p.jitterCv = 0.0;
    Network net(sim, p, 1);
    int delivered = 0;
    for (int i = 0; i < 10; ++i)
        net.send(0, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 10);
}

TEST(NetworkDeathTest, ZeroLatencyFatal)
{
    sim::Simulation sim;
    NetParams p;
    p.baseLatencyNs = 0;
    EXPECT_EXIT(Network(sim, p, 1), ::testing::ExitedWithCode(1),
                "latency");
}

} // namespace
} // namespace microscale::net
