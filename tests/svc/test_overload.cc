/**
 * @file
 * Tests for the overload-control layer: the CoDel drop state machine,
 * AIMD and gradient limiter convergence, criticality classification
 * and tier-ordered shedding, the retry-storm guard on rejected work,
 * and the brownout dimmer's control loop.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "svc/mesh.hh"
#include "svc/overload.hh"
#include "topo/presets.hh"

namespace microscale::svc
{
namespace
{

TEST(Overload, AdmissionNameRoundTrip)
{
    for (AdmissionKind kind : {AdmissionKind::Off, AdmissionKind::Aimd,
                               AdmissionKind::Gradient})
        EXPECT_EQ(admissionByName(admissionName(kind)), kind);
    EXPECT_EXIT(admissionByName("vegas"), ::testing::ExitedWithCode(1),
                "unknown admission kind");
    EXPECT_EXIT(makeLimiter(AdmissionParams{}),
                ::testing::ExitedWithCode(1), "admission kind is off");
}

TEST(Overload, ConfigActiveOnlyWhenSomethingEnabled)
{
    OverloadConfig oc;
    EXPECT_FALSE(oc.active());
    oc.admission.kind = AdmissionKind::Aimd;
    EXPECT_TRUE(oc.active());
    oc = OverloadConfig{};
    oc.codel.enabled = true;
    EXPECT_TRUE(oc.active());
    oc = OverloadConfig{};
    oc.brownout.enabled = true;
    EXPECT_TRUE(oc.active());
    oc = OverloadConfig{};
    oc.criticalityAware = true;
    EXPECT_TRUE(oc.active());
}

TEST(Overload, ClassifyFirstMatchWinsElseInherits)
{
    OverloadConfig oc;
    oc.rules.push_back({"a", "x", Criticality::Critical});
    oc.rules.push_back({"*", "x", Criticality::Sheddable});
    oc.rules.push_back({"b", "*", Criticality::Sheddable});
    EXPECT_EQ(oc.classify("a", "x", Criticality::Normal),
              Criticality::Critical);
    EXPECT_EQ(oc.classify("z", "x", Criticality::Normal),
              Criticality::Sheddable);
    EXPECT_EQ(oc.classify("b", "q", Criticality::Critical),
              Criticality::Sheddable);
    // No rule: the caller's tier rides along.
    EXPECT_EQ(oc.classify("z", "q", Criticality::Critical),
              Criticality::Critical);
}

TEST(Overload, AimdLimiterConvergesToBoundsAndBacksOff)
{
    AdmissionParams p;
    p.kind = AdmissionKind::Aimd;
    p.initialLimit = 10.0;
    p.minLimit = 2.0;
    p.maxLimit = 20.0;
    p.latencyTarget = 10 * kMillisecond;
    p.aimdIncrease = 2.0;
    p.aimdBackoff = 0.5;
    std::unique_ptr<ConcurrencyLimiter> lim = makeLimiter(p);
    EXPECT_EQ(lim->kind(), AdmissionKind::Aimd);
    EXPECT_DOUBLE_EQ(lim->limit(), 10.0);

    // One in-target sample grows additively by increase/limit.
    lim->onSample(1e6, false);
    EXPECT_DOUBLE_EQ(lim->limit(), 10.2);

    // Sustained in-target load converges to (and clamps at) the max.
    for (int i = 0; i < 1000; ++i)
        lim->onSample(1e6, false);
    EXPECT_DOUBLE_EQ(lim->limit(), 20.0);

    // A latency breach multiplies by the backoff factor...
    lim->onSample(20e6, false); // 20ms > 10ms target
    EXPECT_DOUBLE_EQ(lim->limit(), 10.0);
    // ...and a drop counts as a breach regardless of latency.
    lim->onSample(1e6, true);
    EXPECT_DOUBLE_EQ(lim->limit(), 5.0);

    // Sustained congestion converges to (and clamps at) the min.
    for (int i = 0; i < 100; ++i)
        lim->onSample(0.0, true);
    EXPECT_DOUBLE_EQ(lim->limit(), 2.0);
}

TEST(Overload, GradientLimiterProbesAtFloorAndFindsFixedPoint)
{
    AdmissionParams p;
    p.kind = AdmissionKind::Gradient;
    p.initialLimit = 16.0;
    p.minLimit = 1.0;
    p.maxLimit = 100.0;
    p.gradientSmoothing = 0.2;
    p.gradientTolerance = 2.0;
    std::unique_ptr<ConcurrencyLimiter> lim = makeLimiter(p);
    EXPECT_EQ(lim->kind(), AdmissionKind::Gradient);

    // At the latency floor the sqrt term probes upward: one sample
    // moves 16 toward 16 + sqrt(16) with smoothing 0.2.
    lim->onSample(1e6, false);
    EXPECT_NEAR(lim->limit(), 16.8, 1e-9);

    // Sustained floor-latency samples climb to (and clamp at) the max.
    for (int i = 0; i < 2000; ++i)
        lim->onSample(1e6, false);
    EXPECT_DOUBLE_EQ(lim->limit(), 100.0);

    // 10x latency inflation clamps the gradient at 0.5; the stable
    // fixed point of L <- 0.5 L + sqrt(L) is L = 4.
    for (int i = 0; i < 2000; ++i)
        lim->onSample(10e6, false);
    EXPECT_NEAR(lim->limit(), 4.0, 0.05);
}

TEST(Overload, CodelDropTimingFollowsControlLaw)
{
    CoDelParams p;
    p.enabled = true;
    p.target = 5 * kMillisecond;
    p.interval = 100 * kMillisecond;
    CoDelState st;
    const Tick above = 10 * kMillisecond;
    const Tick below = 1 * kMillisecond;

    // Below target never drops.
    EXPECT_FALSE(codelShouldDrop(st, p, below, 0));
    EXPECT_FALSE(st.dropping);

    // The first above-target sample arms the interval clock but does
    // not drop; dropping begins only after a full sustained interval.
    EXPECT_FALSE(codelShouldDrop(st, p, above, 0));
    EXPECT_FALSE(codelShouldDrop(st, p, above, 50 * kMillisecond));
    EXPECT_TRUE(codelShouldDrop(st, p, above, 100 * kMillisecond));
    EXPECT_TRUE(st.dropping);
    EXPECT_EQ(st.dropCount, 1u);
    EXPECT_EQ(st.dropNextAt, 200 * kMillisecond);

    // Drops are paced, not per-dequeue.
    EXPECT_FALSE(codelShouldDrop(st, p, above, 150 * kMillisecond));
    EXPECT_TRUE(codelShouldDrop(st, p, above, 200 * kMillisecond));
    EXPECT_EQ(st.dropCount, 2u);

    // Spacing accelerates as interval / sqrt(count): the third drop
    // lands 100/sqrt(2) ~ 70.7ms after the second.
    EXPECT_FALSE(codelShouldDrop(st, p, above, 270 * kMillisecond));
    EXPECT_TRUE(codelShouldDrop(st, p, above, 271 * kMillisecond));
    EXPECT_EQ(st.dropCount, 3u);
    // Fourth: 100/sqrt(3) ~ 57.7ms later.
    EXPECT_TRUE(codelShouldDrop(st, p, above, 329 * kMillisecond));
    EXPECT_EQ(st.dropCount, 4u);

    // Recovery exits the dropping state at once...
    EXPECT_FALSE(codelShouldDrop(st, p, below, 340 * kMillisecond));
    EXPECT_FALSE(st.dropping);

    // ...but a quick relapse resumes near the old drop rate instead of
    // restarting the cycle from one drop per interval.
    EXPECT_FALSE(codelShouldDrop(st, p, above, 341 * kMillisecond));
    EXPECT_TRUE(codelShouldDrop(st, p, above, 441 * kMillisecond));
    EXPECT_EQ(st.dropCount, 2u);
}

TEST(Overload, LimiterTraceObservesAndMerges)
{
    LimiterTrace t;
    EXPECT_FALSE(t.valid);
    t.observe(5.0);
    t.observe(3.0);
    t.observe(7.0);
    EXPECT_TRUE(t.valid);
    EXPECT_DOUBLE_EQ(t.initial, 5.0);
    EXPECT_DOUBLE_EQ(t.minSeen, 3.0);
    EXPECT_DOUBLE_EQ(t.maxSeen, 7.0);
    EXPECT_DOUBLE_EQ(t.last, 7.0);

    // Merging an invalid trace is a no-op; merging into an invalid
    // trace copies.
    LimiterTrace copy = t;
    copy.merge(LimiterTrace{});
    EXPECT_DOUBLE_EQ(copy.last, 7.0);
    LimiterTrace fresh;
    fresh.merge(t);
    EXPECT_DOUBLE_EQ(fresh.initial, 5.0);

    // Two valid traces: mean endpoints, extreme excursions.
    LimiterTrace other;
    other.observe(9.0);
    other.observe(1.0);
    t.merge(other);
    EXPECT_DOUBLE_EQ(t.initial, 7.0);
    EXPECT_DOUBLE_EQ(t.minSeen, 1.0);
    EXPECT_DOUBLE_EQ(t.maxSeen, 9.0);
    EXPECT_DOUBLE_EQ(t.last, 4.0);
}

class OverloadTest : public ::testing::Test
{
  protected:
    OverloadTest()
        : machine_(topo::small8()),
          engine_(sim_, machine_),
          kernel_(sim_, machine_, engine_, os::SchedParams{}, 1),
          network_(sim_, quietNet(), 1),
          mesh_(kernel_, network_, RpcCostParams{}, 1)
    {
        kernel_.start();
        profile_.name = "overload-test";
        profile_.ipcBase = 1.0;
        profile_.l3Apki = 1.0;
        profile_.wssBytes = 1024 * 1024;
    }

    static net::NetParams
    quietNet()
    {
        net::NetParams p;
        p.jitterCv = 0.0;
        return p;
    }

    Service *
    makeService(const std::string &name, unsigned replicas = 1,
                unsigned workers = 2)
    {
        ServiceParams p;
        p.name = name;
        p.profile = profile_;
        p.replicas = replicas;
        p.workersPerReplica = workers;
        p.computeCv = 0.0;
        return mesh_.createService(p);
    }

    /** A fixed concurrency limit: AIMD clamped to a single value. */
    static AdmissionParams
    fixedLimit(double limit)
    {
        AdmissionParams p;
        p.kind = AdmissionKind::Aimd;
        p.initialLimit = p.minLimit = p.maxLimit = limit;
        return p;
    }

    sim::Simulation sim_;
    topo::Machine machine_;
    cpu::ExecEngine engine_;
    os::Kernel kernel_;
    net::Network network_;
    Mesh mesh_;
    cpu::WorkProfile profile_;
};

TEST_F(OverloadTest, AdmissionRejectsBeyondLimitAndFailsFast)
{
    OverloadConfig oc;
    oc.admission = fixedLimit(4.0);
    mesh_.setOverload(oc);

    Service *s = makeService("gate", 1, 1);
    s->addOp("slow", [](HandlerCtx &ctx) {
        ctx.compute(50e6, [&ctx] { ctx.done(); });
    });

    std::vector<Status> statuses;
    std::vector<int> completion_order;
    for (int i = 0; i < 10; ++i) {
        mesh_.callExternalS("gate", "slow", Payload{},
                            [&, i](const Payload &, Status st) {
                                statuses.push_back(st);
                                completion_order.push_back(i);
                            });
    }
    sim_.run();

    // Occupancy (queued + busy) may fill the limit, nothing beyond.
    ASSERT_EQ(statuses.size(), 10u);
    int ok = 0, rejected = 0;
    for (Status st : statuses) {
        if (st == Status::Ok)
            ++ok;
        else if (st == Status::Rejected)
            ++rejected;
    }
    EXPECT_EQ(ok, 4);
    EXPECT_EQ(rejected, 6);
    EXPECT_EQ(s->requestsProcessed(), 4u);
    EXPECT_EQ(s->overloadCounters()
                  .admissionRejects[criticalityIndex(Criticality::Normal)],
              6u);
    EXPECT_EQ(s->opStats().at("slow").statusCounts[statusIndex(
                  Status::Rejected)],
              6u);
    // Rejections never occupy a worker: they complete first.
    for (int i = 0; i < 6; ++i)
        EXPECT_GE(completion_order[i], 4);

    // The clamped limiter never moved, and the trace recorded it.
    EXPECT_DOUBLE_EQ(s->replicaLimit(0), 4.0);
    const LimiterTrace trace = s->limiterSummary();
    EXPECT_TRUE(trace.valid);
    EXPECT_DOUBLE_EQ(trace.minSeen, 4.0);
    EXPECT_DOUBLE_EQ(trace.maxSeen, 4.0);
}

TEST_F(OverloadTest, TierOrderingShedsSheddableFirstCriticalLast)
{
    OverloadConfig oc;
    oc.admission = fixedLimit(8.0);
    oc.criticalityAware = true;
    oc.sheddableFrac = 0.5;  // sheddable wall at occupancy 4
    oc.normalFrac = 0.75;    // normal wall at occupancy 6
    oc.rules.push_back({"store", "crit", Criticality::Critical});
    oc.rules.push_back({"store", "shed", Criticality::Sheddable});
    mesh_.setOverload(oc);

    Service *s = makeService("store", 1, 1);
    for (const char *op : {"crit", "norm", "shed"}) {
        s->addOp(op, [](HandlerCtx &ctx) {
            ctx.compute(50e6, [&ctx] { ctx.done(); });
        });
    }

    // One deterministic burst; deliveries keep issue order. Expected
    // admission against occupancy (busy + queued) at arrival:
    struct Send
    {
        const char *op;
        Status expect;
    };
    const std::vector<Send> sends = {
        {"crit", Status::Ok},       // occ 0..4: critical fills freely
        {"crit", Status::Ok},       {"crit", Status::Ok},
        {"crit", Status::Ok},       {"crit", Status::Ok},
        {"shed", Status::Rejected}, // occ 5 >= 4: sheddable wall
        {"norm", Status::Ok},       // occ 5 < 6: normal still admitted
        {"norm", Status::Rejected}, // occ 6 >= 6: normal wall
        {"crit", Status::Ok},       // occ 6 < 8
        {"crit", Status::Ok},       // occ 7 < 8
        {"crit", Status::Rejected}, // occ 8 >= 8: hard limit
        {"shed", Status::Rejected},
    };
    std::vector<Status> statuses(sends.size(), Status::Ok);
    for (std::size_t i = 0; i < sends.size(); ++i) {
        mesh_.callExternalS("store", sends[i].op, Payload{},
                            [&statuses, i](const Payload &, Status st) {
                                statuses[i] = st;
                            });
    }
    sim_.run();

    for (std::size_t i = 0; i < sends.size(); ++i)
        EXPECT_EQ(statuses[i], sends[i].expect) << "send " << i;
    const OverloadCounters &cnt = s->overloadCounters();
    EXPECT_EQ(cnt.admissionRejects[criticalityIndex(
                  Criticality::Sheddable)],
              2u);
    EXPECT_EQ(cnt.admissionRejects[criticalityIndex(Criticality::Normal)],
              1u);
    EXPECT_EQ(cnt.admissionRejects[criticalityIndex(
                  Criticality::Critical)],
              1u);
    EXPECT_EQ(s->requestsProcessed(), 8u);
}

TEST_F(OverloadTest, RejectedResponsesAreNeverRetried)
{
    // A retry-capable edge with budget to spare...
    ResilienceConfig rc;
    rc.retryBudgetRatio = 1.0;
    EdgeRule rule;
    rule.client = kExternalClient;
    rule.server = "guarded";
    rule.policy.maxAttempts = 3;
    rule.policy.backoffBase = 100 * kMicrosecond;
    rc.edges.push_back(rule);
    mesh_.setResilience(rc);

    // ...against a tightly admission-limited service.
    OverloadConfig oc;
    oc.admission = fixedLimit(2.0);
    mesh_.setOverload(oc);

    Service *s = makeService("guarded", 1, 1);
    s->addOp("work", [](HandlerCtx &ctx) {
        ctx.compute(50e6, [&ctx] { ctx.done(); });
    });

    int ok = 0, rejected = 0;
    for (int i = 0; i < 8; ++i) {
        mesh_.callExternalS("guarded", "work", Payload{},
                            [&](const Payload &, Status st) {
                                if (st == Status::Ok)
                                    ++ok;
                                else if (st == Status::Rejected)
                                    ++rejected;
                            });
    }
    sim_.run();

    // The shed work failed fast without a single retry: rejections are
    // deliberate load shedding, and retrying them would amplify the
    // very overload the limiter is relieving (a retry storm).
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(rejected, 6);
    EXPECT_EQ(mesh_.retryStats().retries, 0u);
    EXPECT_EQ(mesh_.retryStats().rejectedNoRetry, 6u);
    EXPECT_EQ(s->requestsProcessed(), 2u);

    // The same edge does retry genuine ill-health: a crashed replica
    // yields Unavailable, which the policy is still allowed to retry.
    s->setReplicaDown(0, true);
    mesh_.callExternalS("guarded", "work", Payload{},
                        [](const Payload &, Status) {});
    sim_.run();
    EXPECT_GT(mesh_.retryStats().retries, 0u);
}

TEST_F(OverloadTest, CodelShedsStaleBacklogAndServesNewestFirst)
{
    OverloadConfig oc;
    oc.codel.enabled = true;
    oc.codel.target = 1 * kMillisecond;
    oc.codel.interval = 5 * kMillisecond;
    oc.codel.lifoUnderOverload = true;
    mesh_.setOverload(oc);

    Service *s = makeService("backlog", 1, 1);
    s->addOp("work", [](HandlerCtx &ctx) {
        ctx.compute(10e6, [&ctx] { ctx.done(); });
    });

    // A burst far beyond one worker's capacity: sojourn climbs past
    // the target within a few services, and CoDel starts draining the
    // backlog while adaptive LIFO serves the freshest request first.
    int ok = 0, rejected = 0;
    for (int i = 0; i < 30; ++i) {
        mesh_.callExternalS("backlog", "work", Payload{},
                            [&](const Payload &, Status st) {
                                if (st == Status::Ok)
                                    ++ok;
                                else if (st == Status::Rejected)
                                    ++rejected;
                            });
    }
    sim_.run();

    const OverloadCounters &cnt = s->overloadCounters();
    EXPECT_EQ(ok + rejected, 30);
    EXPECT_GT(cnt.codelDrops, 0u);
    EXPECT_EQ(cnt.codelDrops, static_cast<std::uint64_t>(rejected));
    EXPECT_GT(cnt.lifoDequeues, 0u);
    EXPECT_EQ(s->opStats().at("work").statusCounts[statusIndex(
                  Status::Rejected)],
              static_cast<std::uint64_t>(rejected));
    // Without admission control no limiter ever materialized.
    EXPECT_FALSE(s->limiterSummary().valid);
}

TEST_F(OverloadTest, BrownoutDimsToFloorUnderSloBreach)
{
    Service *front = makeService("front", 1, 2);
    front->addOp("page", [](HandlerCtx &ctx) {
        ctx.compute(20e6, [&ctx] { ctx.done(); }); // well past the SLO
    });

    BrownoutParams bp;
    bp.enabled = true;
    bp.sloP99Ms = 2.0;
    bp.period = 10 * kMillisecond;
    bp.gain = 0.5;
    bp.minDimmer = 0.2;
    BrownoutController ctrl(*front, bp);
    ctrl.start();

    for (Tick t = 0; t < 40 * kMillisecond; t += kMillisecond) {
        sim_.scheduleAt(t, [&] {
            mesh_.callExternalS("front", "page", Payload{},
                                [](const Payload &, Status) {});
        });
    }
    sim_.scheduleAt(80 * kMillisecond, [&] { ctrl.stop(); });
    sim_.run();

    // Far-above-SLO tails clamp the dimmer to its floor immediately.
    EXPECT_DOUBLE_EQ(ctrl.dimmer(), bp.minDimmer);
    const BrownoutController::Telemetry &tm = ctrl.telemetry();
    EXPECT_GT(tm.adjustments, 0u);
    EXPECT_DOUBLE_EQ(tm.dimmerMin, bp.minDimmer);
    EXPECT_GT(tm.dutyCycleSeconds, 0.0);

    // At dimmer d, shouldDegrade() skips with probability 1 - d.
    int skips = 0;
    for (int i = 0; i < 200; ++i) {
        if (ctrl.shouldDegrade())
            ++skips;
    }
    EXPECT_GT(skips, 100);
    EXPECT_LT(skips, 200);
    EXPECT_EQ(tm.skips, static_cast<std::uint64_t>(skips));
}

TEST_F(OverloadTest, BrownoutRecoversOnceTailsReturnInSlo)
{
    Service *front = makeService("front", 1, 2);
    bool slow = true;
    front->addOp("page", [&slow](HandlerCtx &ctx) {
        if (slow)
            ctx.compute(20e6, [&ctx] { ctx.done(); });
        else
            ctx.done();
    });

    BrownoutParams bp;
    bp.enabled = true;
    bp.sloP99Ms = 2.0;
    bp.period = 10 * kMillisecond;
    bp.gain = 0.5;
    bp.minDimmer = 0.2;
    BrownoutController ctrl(*front, bp);
    ctrl.start();

    for (Tick t = 0; t < 80 * kMillisecond; t += kMillisecond) {
        sim_.scheduleAt(t, [&] {
            mesh_.callExternalS("front", "page", Payload{},
                                [](const Payload &, Status) {});
        });
    }
    // Half way through the run the overload lifts.
    sim_.scheduleAt(40 * kMillisecond, [&slow] { slow = false; });
    sim_.scheduleAt(120 * kMillisecond, [&] { ctrl.stop(); });
    sim_.run();

    // Dimmed to the floor while breaching, fully restored after the
    // tails came back inside the SLO.
    EXPECT_DOUBLE_EQ(ctrl.telemetry().dimmerMin, bp.minDimmer);
    EXPECT_DOUBLE_EQ(ctrl.dimmer(), 1.0);
    EXPECT_DOUBLE_EQ(ctrl.telemetry().dimmerLast, 1.0);
    // A fully-restored dimmer never degrades (and draws no RNG).
    EXPECT_FALSE(ctrl.shouldDegrade());
}

} // namespace
} // namespace microscale::svc
