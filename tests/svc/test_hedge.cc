/**
 * @file
 * Tests for hedged requests: first-response-wins with loser
 * cancellation, replica anti-affinity of hedge legs, the token-bucket
 * hedge budget, failure unwinding (every leg fails = one respond),
 * and same-seed reproducibility of the dedicated hedge RNG stream.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "svc/mesh.hh"
#include "topo/presets.hh"

namespace microscale::svc
{
namespace
{

class HedgeTest : public ::testing::Test
{
  protected:
    HedgeTest()
        : machine_(topo::small8()),
          engine_(sim_, machine_),
          kernel_(sim_, machine_, engine_, os::SchedParams{}, 1),
          network_(sim_, quietNet(), 1),
          mesh_(kernel_, network_, RpcCostParams{}, 1)
    {
        kernel_.start();
        profile_.name = "hedge-test";
        profile_.ipcBase = 1.0;
        profile_.l3Apki = 1.0;
        profile_.wssBytes = 1024 * 1024;
    }

    static net::NetParams
    quietNet()
    {
        net::NetParams p;
        p.jitterCv = 0.0;
        return p;
    }

    Service *
    makeService(const std::string &name, unsigned replicas,
                unsigned workers = 2)
    {
        ServiceParams p;
        p.name = name;
        p.profile = profile_;
        p.replicas = replicas;
        p.workersPerReplica = workers;
        p.computeCv = 0.0;
        return mesh_.createService(p);
    }

    /** Hedge-enabled external->`server` policy, no jitter. */
    static ResilienceConfig
    hedgePolicy(const std::string &server, Tick delay,
                double budget = 1.0)
    {
        ResilienceConfig rc;
        rc.hedgeBudgetRatio = budget;
        EdgePolicy pol;
        pol.jitterFrac = 0.0;
        pol.hedge.delay = delay;
        pol.hedge.maxHedges = 1;
        rc.edges.push_back({kExternalClient, server, pol});
        return rc;
    }

    sim::Simulation sim_;
    topo::Machine machine_;
    cpu::ExecEngine engine_;
    os::Kernel kernel_;
    net::Network network_;
    Mesh mesh_;
    cpu::WorkProfile profile_;
};

TEST_F(HedgeTest, HedgeWinsAgainstSlowReplicaAndCancelsLoser)
{
    mesh_.setResilience(hedgePolicy("fan", 500 * kMicrosecond));
    Service *s = makeService("fan", 2);
    s->addOp("get", [](HandlerCtx &ctx) {
        ctx.compute(1e6, [&ctx] { ctx.done(); });
    });
    // Replica 0 (the round-robin's first pick) is a deep straggler:
    // the first leg lands on it and the hedge must win the race.
    s->setReplicaSlow(0, 40.0);

    int responses = 0;
    Status status = Status::Unavailable;
    Tick done_at = 0;
    mesh_.callExternalS("fan", "get", Payload{},
                        [&](const Payload &, Status st) {
                            ++responses;
                            status = st;
                            done_at = sim_.now();
                        });
    sim_.run();

    EXPECT_EQ(responses, 1);
    EXPECT_EQ(status, Status::Ok);
    const HedgeStats &hs = mesh_.hedgeStats();
    EXPECT_EQ(hs.firstAttempts, 1u);
    EXPECT_EQ(hs.launched, 1u);
    EXPECT_EQ(hs.wins, 1u);
    EXPECT_EQ(hs.cancelled, 1u);
    EXPECT_EQ(hs.budgetDenied, 0u);
    // The straggler leg alone would take ~40 compute times; the
    // hedged call must settle well before that.
    EXPECT_LT(done_at, 10 * kMillisecond);
}

TEST_F(HedgeTest, HedgeLegAvoidsTheFirstLegsReplica)
{
    // Delay long enough that the healthy call below finishes first
    // and never hedges; only the straggler-stuck call launches one.
    mesh_.setResilience(hedgePolicy("fan", 2 * kMillisecond));
    Service *s = makeService("fan", 2);
    s->addOp("get", [](HandlerCtx &ctx) {
        ctx.compute(1e6, [&ctx] { ctx.done(); });
    });
    s->setReplicaSlow(0, 40.0);

    // A second, plain call right after the first advances the
    // round-robin cursor so that — without anti-affinity — the hedge
    // leg would rotate straight back onto the slow replica 0 and the
    // hedge could never win.
    int responses = 0;
    Tick hedged_done = 0;
    mesh_.callExternalS("fan", "get", Payload{},
                        [&](const Payload &, Status) {
                            ++responses;
                            hedged_done = sim_.now();
                        });
    mesh_.callExternalS("fan", "get", Payload{},
                        [&](const Payload &, Status) { ++responses; });
    sim_.run();

    EXPECT_EQ(responses, 2);
    const HedgeStats &hs = mesh_.hedgeStats();
    EXPECT_EQ(hs.firstAttempts, 2u);
    EXPECT_EQ(hs.wins, 1u);
    EXPECT_LT(hedged_done, 10 * kMillisecond);
}

TEST_F(HedgeTest, BudgetDeniesHedgesWhenExhausted)
{
    // 0.2 tokens accrue per first attempt: a single call never
    // reaches the 1-token price of a hedge leg.
    mesh_.setResilience(
        hedgePolicy("fan", 200 * kMicrosecond, /*budget=*/0.2));
    Service *s = makeService("fan", 2);
    s->addOp("get", [](HandlerCtx &ctx) {
        ctx.compute(1e6, [&ctx] { ctx.done(); });
    });
    s->setReplicaSlow(0, 40.0);

    int responses = 0;
    Status status = Status::Unavailable;
    mesh_.callExternalS("fan", "get", Payload{},
                        [&](const Payload &, Status st) {
                            ++responses;
                            status = st;
                        });
    sim_.run();

    // The straggler leg still answers; the call is slow but Ok.
    EXPECT_EQ(responses, 1);
    EXPECT_EQ(status, Status::Ok);
    const HedgeStats &hs = mesh_.hedgeStats();
    EXPECT_EQ(hs.launched, 0u);
    EXPECT_GE(hs.budgetDenied, 1u);
    EXPECT_EQ(hs.wins, 0u);
    EXPECT_EQ(hs.cancelled, 0u);
}

TEST_F(HedgeTest, AllLegsFailRespondsExactlyOnce)
{
    mesh_.setResilience(hedgePolicy("fan", 200 * kMicrosecond));
    Service *s = makeService("fan", 2);
    s->addOp("get", [](HandlerCtx &ctx) {
        ctx.compute(0.2e6, [&ctx] { ctx.fail(Status::Unavailable); });
    });

    int responses = 0;
    Status status = Status::Ok;
    mesh_.callExternalS("fan", "get", Payload{},
                        [&](const Payload &, Status st) {
                            ++responses;
                            status = st;
                        });
    sim_.run();

    EXPECT_EQ(responses, 1);
    EXPECT_EQ(status, Status::Unavailable);
    EXPECT_EQ(mesh_.hedgeStats().wins, 0u);
    EXPECT_EQ(mesh_.hedgeStats().cancelled, 0u);
}

/** One hedged world, returning the settle tick of a single call whose
 * hedge timer draws jitter from the "mesh.hedge" stream. */
Tick
jitteredHedgeRun(std::uint64_t seed)
{
    sim::Simulation sim;
    topo::Machine machine(topo::small8());
    cpu::ExecEngine engine(sim, machine);
    os::Kernel kernel(sim, machine, engine, os::SchedParams{}, seed);
    net::NetParams np;
    np.jitterCv = 0.0;
    net::Network network(sim, np, seed);
    Mesh mesh(kernel, network, RpcCostParams{}, seed);
    kernel.start();

    ResilienceConfig rc;
    rc.hedgeBudgetRatio = 1.0;
    EdgePolicy pol;
    pol.jitterFrac = 0.5; // exercises the hedge RNG stream
    pol.hedge.delay = 500 * kMicrosecond;
    rc.edges.push_back({kExternalClient, "fan", pol});
    mesh.setResilience(rc);

    cpu::WorkProfile profile;
    profile.name = "hedge-test";
    profile.ipcBase = 1.0;
    profile.l3Apki = 1.0;
    profile.wssBytes = 1024 * 1024;
    ServiceParams p;
    p.name = "fan";
    p.profile = profile;
    p.replicas = 2;
    p.workersPerReplica = 2;
    p.computeCv = 0.0;
    Service *s = mesh.createService(p);
    s->addOp("get", [](HandlerCtx &ctx) {
        ctx.compute(1e6, [&ctx] { ctx.done(); });
    });
    s->setReplicaSlow(0, 40.0);

    Tick done_at = 0;
    mesh.callExternalS("fan", "get", Payload{},
                       [&](const Payload &, Status) {
                           done_at = sim.now();
                       });
    sim.run();
    return done_at;
}

TEST(HedgeRng, SameSeedReproducesTheRace)
{
    const Tick a = jitteredHedgeRun(7);
    const Tick b = jitteredHedgeRun(7);
    EXPECT_GT(a, 0u);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace microscale::svc
