/**
 * @file
 * Tests for the resilience layer: bounded queues and OVERLOAD
 * shedding, deadline propagation and timeout unwinding, retries with
 * a budget, per-replica circuit breakers, and scripted faults
 * (crash/restart, brownout, latency inflation).
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "svc/fault.hh"
#include "svc/mesh.hh"
#include "topo/presets.hh"

namespace microscale::svc
{
namespace
{

class ResilienceTest : public ::testing::Test
{
  protected:
    ResilienceTest()
        : machine_(topo::small8()),
          engine_(sim_, machine_),
          kernel_(sim_, machine_, engine_, os::SchedParams{}, 1),
          network_(sim_, quietNet(), 1),
          mesh_(kernel_, network_, RpcCostParams{}, 1)
    {
        kernel_.start();
        profile_.name = "resilience-test";
        profile_.ipcBase = 1.0;
        profile_.l3Apki = 1.0;
        profile_.wssBytes = 1024 * 1024;
    }

    static net::NetParams
    quietNet()
    {
        net::NetParams p;
        p.jitterCv = 0.0;
        return p;
    }

    Service *
    makeService(const std::string &name, unsigned replicas = 1,
                unsigned workers = 2)
    {
        ServiceParams p;
        p.name = name;
        p.profile = profile_;
        p.replicas = replicas;
        p.workersPerReplica = workers;
        p.computeCv = 0.0;
        return mesh_.createService(p);
    }

    sim::Simulation sim_;
    topo::Machine machine_;
    cpu::ExecEngine engine_;
    os::Kernel kernel_;
    net::Network network_;
    Mesh mesh_;
    cpu::WorkProfile profile_;
};

TEST_F(ResilienceTest, BoundedQueueShedsBeyondCapacity)
{
    ResilienceConfig rc;
    rc.maxQueueDepth = 2;
    mesh_.setResilience(rc);

    Service *s = makeService("narrow", 1, 1); // one worker
    s->addOp("slow", [](HandlerCtx &ctx) {
        ctx.compute(10e6, [&ctx] { ctx.done(); });
    });

    // 1 on the worker + 2 queued fit; the last 2 must be shed.
    std::vector<Status> statuses;
    std::vector<int> completion_order;
    for (int i = 0; i < 5; ++i) {
        mesh_.callExternalS("narrow", "slow", Payload{},
                            [&, i](const Payload &, Status st) {
                                statuses.push_back(st);
                                completion_order.push_back(i);
                            });
    }
    sim_.run();

    ASSERT_EQ(statuses.size(), 5u);
    int ok = 0, overload = 0;
    for (Status st : statuses) {
        if (st == Status::Ok)
            ++ok;
        else if (st == Status::Overload)
            ++overload;
    }
    EXPECT_EQ(ok, 3);
    EXPECT_EQ(overload, 2);
    EXPECT_EQ(s->resilienceCounters().shed, 2u);
    // Shed requests never reached a worker.
    EXPECT_EQ(s->requestsProcessed(), 3u);
    EXPECT_EQ(s->opStats().at("slow").requests, 3u);
    EXPECT_EQ(s->opStats().at("slow").statusCounts[statusIndex(
                  Status::Overload)],
              2u);

    // Rejections are fail-fast: requests 3 and 4 finish first, then
    // the accepted ones drain through the single worker in FIFO order.
    ASSERT_EQ(completion_order.size(), 5u);
    EXPECT_EQ(completion_order[0], 3);
    EXPECT_EQ(completion_order[1], 4);
    EXPECT_EQ(completion_order[2], 0);
    EXPECT_EQ(completion_order[3], 1);
    EXPECT_EQ(completion_order[4], 2);
}

TEST_F(ResilienceTest, ShedOnlyWhenNoIdleWorker)
{
    ResilienceConfig rc;
    rc.maxQueueDepth = 1;
    mesh_.setResilience(rc);

    // Plenty of workers: nothing queues, nothing is shed.
    Service *s = makeService("wide", 1, 8);
    s->addOp("work", [](HandlerCtx &ctx) {
        ctx.compute(1e6, [&ctx] { ctx.done(); });
    });
    int ok = 0;
    for (int i = 0; i < 6; ++i) {
        mesh_.callExternalS("wide", "work", Payload{},
                            [&](const Payload &, Status st) {
                                if (st == Status::Ok)
                                    ++ok;
                            });
    }
    sim_.run();
    EXPECT_EQ(ok, 6);
    EXPECT_EQ(s->resilienceCounters().shed, 0u);
}

TEST_F(ResilienceTest, ClientTimeoutUnwindsBeforeSlowResponse)
{
    ResilienceConfig rc;
    EdgeRule rule;
    rule.client = kExternalClient;
    rule.server = "sluggish";
    rule.policy.timeout = 1 * kMillisecond;
    rc.edges.push_back(rule);
    mesh_.setResilience(rc);

    Service *s = makeService("sluggish");
    s->addOp("slow", [](HandlerCtx &ctx) {
        // ~20ms of compute, far past the 1ms deadline.
        ctx.compute(50e6, [&ctx] { ctx.done(); });
    });

    Status got = Status::Ok;
    Tick completed = 0;
    int responses = 0;
    mesh_.callExternalS("sluggish", "slow", Payload{},
                        [&](const Payload &, Status st) {
                            got = st;
                            completed = sim_.now();
                            ++responses;
                        });
    sim_.run();
    EXPECT_EQ(got, Status::Timeout);
    EXPECT_EQ(responses, 1); // the late real response is swallowed
    EXPECT_EQ(completed, 1 * kMillisecond);
    EXPECT_EQ(mesh_.retryStats().clientTimeouts, 1u);
    // The handler itself still ran to completion.
    EXPECT_EQ(s->requestsProcessed(), 1u);
}

TEST_F(ResilienceTest, DeadlinePropagatesDownstream)
{
    ResilienceConfig rc;
    EdgeRule rule;
    rule.client = kExternalClient;
    rule.server = "front";
    rule.policy.timeout = 5 * kMillisecond;
    rc.edges.push_back(rule);
    mesh_.setResilience(rc);

    Service *front = makeService("front");
    Service *back = makeService("back");
    Tick back_deadline = kTickNever;
    back->addOp("inner", [&back_deadline](HandlerCtx &ctx) {
        back_deadline = ctx.deadline();
        ctx.compute(50e6, [&ctx] { ctx.done(); }); // ~20ms
    });
    front->addOp("outer", [](HandlerCtx &ctx) {
        // 1-arg call: a downstream failure fails this handler with
        // the same status.
        ctx.call("back", "inner", Payload{},
                 [&ctx](const Payload &) { ctx.done(); });
    });

    Status got = Status::Ok;
    Tick completed = 0;
    mesh_.callExternalS("front", "outer", Payload{},
                        [&](const Payload &, Status st) {
                            got = st;
                            completed = sim_.now();
                        });
    sim_.run();
    // The back handler saw the deadline the external edge stamped.
    EXPECT_EQ(back_deadline, 5 * kMillisecond);
    EXPECT_EQ(got, Status::Timeout);
    // Unwinds at the deadline, not after back's 20ms compute.
    EXPECT_LE(completed, 6 * kMillisecond);
}

TEST_F(ResilienceTest, RetrySucceedsAfterUnavailableReplica)
{
    ResilienceConfig rc;
    rc.retryBudgetRatio = 1.0;
    EdgeRule rule;
    rule.client = kExternalClient;
    rule.server = "flaky";
    rule.policy.maxAttempts = 2;
    rule.policy.backoffBase = 100 * kMicrosecond;
    rc.edges.push_back(rule);
    mesh_.setResilience(rc);

    Service *s = makeService("flaky", 2, 1);
    s->addOp("work", [](HandlerCtx &ctx) { ctx.done(); });
    s->setReplicaDown(0, true);

    // Blind round-robin hits the dead replica 0 first; the retry lands
    // on replica 1.
    Status got = Status::Unavailable;
    mesh_.callExternalS("flaky", "work", Payload{},
                        [&](const Payload &, Status st) { got = st; });
    sim_.run();
    EXPECT_EQ(got, Status::Ok);
    EXPECT_EQ(mesh_.retryStats().retries, 1u);
    EXPECT_EQ(s->resilienceCounters().downRejects, 1u);
    EXPECT_EQ(s->requestsProcessed(), 1u);
}

TEST_F(ResilienceTest, RetryBudgetDeniesWhenExhausted)
{
    ResilienceConfig rc;
    // One first attempt accrues only 0.1 token; a retry needs 1.0.
    rc.retryBudgetRatio = 0.1;
    EdgeRule rule;
    rule.client = kExternalClient;
    rule.server = "dead";
    rule.policy.maxAttempts = 3;
    rc.edges.push_back(rule);
    mesh_.setResilience(rc);

    Service *s = makeService("dead", 1, 1);
    s->addOp("work", [](HandlerCtx &ctx) { ctx.done(); });
    s->setReplicaDown(0, true);

    Status got = Status::Ok;
    mesh_.callExternalS("dead", "work", Payload{},
                        [&](const Payload &, Status st) { got = st; });
    sim_.run();
    EXPECT_EQ(got, Status::Unavailable);
    EXPECT_EQ(mesh_.retryStats().retries, 0u);
    EXPECT_EQ(mesh_.retryStats().budgetDenied, 1u);
}

TEST_F(ResilienceTest, HealthAwareBalancingSkipsDownReplica)
{
    ResilienceConfig rc;
    rc.healthAwareBalancing = true;
    mesh_.setResilience(rc);

    Service *s = makeService("pair", 2, 2);
    s->addOp("work", [](HandlerCtx &ctx) { ctx.done(); });
    s->setReplicaDown(0, true);

    int ok = 0;
    for (int i = 0; i < 6; ++i) {
        mesh_.callExternalS("pair", "work", Payload{},
                            [&](const Payload &, Status st) {
                                if (st == Status::Ok)
                                    ++ok;
                            });
    }
    sim_.run();
    // All traffic routed around the dead replica, no retries needed.
    EXPECT_EQ(ok, 6);
    EXPECT_EQ(s->resilienceCounters().downRejects, 0u);
    for (const Worker &w : s->workers()) {
        if (w.replica == 0)
            EXPECT_EQ(w.thread->ec().counters().instructions, 0.0);
    }
}

TEST_F(ResilienceTest, BreakerOpensAfterConsecutiveFailuresAndRecovers)
{
    ResilienceConfig rc;
    rc.healthAwareBalancing = true;
    rc.breaker.enabled = true;
    rc.breaker.consecutiveFailures = 3;
    rc.breaker.windowMin = 100; // keep the rate rule out of the way
    rc.breaker.openFor = 5 * kMillisecond;
    mesh_.setResilience(rc);

    Service *s = makeService("shaky", 1, 2);
    bool failing = true;
    s->addOp("work", [&failing](HandlerCtx &ctx) {
        if (failing)
            ctx.fail(Status::Unavailable);
        else
            ctx.done();
    });

    std::vector<Status> statuses;
    auto send = [&] {
        mesh_.callExternalS("shaky", "work", Payload{},
                            [&](const Payload &, Status st) {
                                statuses.push_back(st);
                            });
    };

    // Three spaced failures trip the breaker...
    for (int i = 0; i < 3; ++i)
        sim_.scheduleAt(i * kMillisecond, send);
    sim_.run();
    ASSERT_EQ(statuses.size(), 3u);
    EXPECT_EQ(s->breakerState(0).state, BreakerState::State::Open);
    EXPECT_EQ(s->resilienceCounters().breakerOpens, 1u);

    // ...so the next request finds no admissible replica.
    sim_.scheduleAt(sim_.now() + kMillisecond, send);
    sim_.run();
    ASSERT_EQ(statuses.size(), 4u);
    EXPECT_EQ(statuses[3], Status::Unavailable);
    EXPECT_EQ(s->resilienceCounters().noReplica, 1u);

    // After openFor, the service heals: the half-open probe succeeds
    // and the breaker closes again.
    failing = false;
    sim_.scheduleAt(sim_.now() + 6 * kMillisecond, send);
    sim_.run();
    ASSERT_EQ(statuses.size(), 5u);
    EXPECT_EQ(statuses[4], Status::Ok);
    EXPECT_EQ(s->breakerState(0).state, BreakerState::State::Closed);

    sim_.scheduleAt(sim_.now() + kMillisecond, send);
    sim_.run();
    ASSERT_EQ(statuses.size(), 6u);
    EXPECT_EQ(statuses[5], Status::Ok);
}

TEST_F(ResilienceTest, BreakerReopensOnFailedProbe)
{
    ResilienceConfig rc;
    rc.healthAwareBalancing = true;
    rc.breaker.enabled = true;
    rc.breaker.consecutiveFailures = 2;
    rc.breaker.windowMin = 100;
    rc.breaker.openFor = 5 * kMillisecond;
    mesh_.setResilience(rc);

    Service *s = makeService("broken", 1, 2);
    s->addOp("work",
             [](HandlerCtx &ctx) { ctx.fail(Status::Unavailable); });

    std::vector<Status> statuses;
    auto send = [&] {
        mesh_.callExternalS("broken", "work", Payload{},
                            [&](const Payload &, Status st) {
                                statuses.push_back(st);
                            });
    };
    for (int i = 0; i < 2; ++i)
        sim_.scheduleAt(i * kMillisecond, send);
    sim_.run();
    EXPECT_EQ(s->breakerState(0).state, BreakerState::State::Open);

    // The probe after openFor fails: open again, second trip counted.
    sim_.scheduleAt(sim_.now() + 6 * kMillisecond, send);
    sim_.run();
    ASSERT_EQ(statuses.size(), 3u);
    EXPECT_EQ(statuses[2], Status::Unavailable);
    EXPECT_EQ(s->breakerState(0).state, BreakerState::State::Open);
    EXPECT_EQ(s->resilienceCounters().breakerOpens, 2u);
}

TEST_F(ResilienceTest, CrashFailsQueuedAndRestartRestoresService)
{
    Service *s = makeService("target", 1, 1);
    s->addOp("slow", [](HandlerCtx &ctx) {
        ctx.compute(10e6, [&ctx] { ctx.done(); });
    });

    FaultScript script;
    FaultEvent down;
    down.kind = FaultEvent::Kind::ReplicaDown;
    down.at = 1 * kMillisecond;
    down.service = "target";
    script.events.push_back(down);
    FaultEvent up;
    up.kind = FaultEvent::Kind::ReplicaUp;
    up.at = 20 * kMillisecond;
    up.service = "target";
    script.events.push_back(up);
    FaultInjector injector(mesh_, script);
    injector.arm();

    std::vector<Status> statuses;
    auto send = [&] {
        mesh_.callExternalS("target", "slow", Payload{},
                            [&](const Payload &, Status st) {
                                statuses.push_back(st);
                            });
    };
    // Two requests before the crash: one on the worker, one queued.
    // The queued one dies with the replica; the in-flight one finishes
    // (no mid-handler abort). One request lands mid-crash and one
    // after the restart.
    send();
    send();
    sim_.scheduleAt(10 * kMillisecond, send);
    sim_.scheduleAt(25 * kMillisecond, send);
    sim_.run();

    ASSERT_EQ(statuses.size(), 4u);
    EXPECT_EQ(injector.applied(), 2u);
    int ok = 0, unavailable = 0;
    for (Status st : statuses) {
        if (st == Status::Ok)
            ++ok;
        else if (st == Status::Unavailable)
            ++unavailable;
    }
    EXPECT_EQ(ok, 2);          // in-flight + post-restart
    EXPECT_EQ(unavailable, 2); // queued-at-crash + mid-crash
    EXPECT_FALSE(s->replicaDown(0));
    EXPECT_EQ(s->resilienceCounters().downRejects, 1u);
}

TEST_F(ResilienceTest, SlowdownScalesComputeTime)
{
    Service *fast = makeService("fast-svc", 1, 1);
    Service *slow = makeService("slow-svc", 1, 1);
    for (Service *s : {fast, slow}) {
        s->addOp("work", [](HandlerCtx &ctx) {
            ctx.compute(4e6, [&ctx] { ctx.done(); });
        });
    }
    slow->setSlowdown(4.0);
    EXPECT_DOUBLE_EQ(slow->slowdown(), 4.0);

    int got = 0;
    for (const char *name : {"fast-svc", "slow-svc"}) {
        mesh_.callExternalS(name, "work", Payload{},
                            [&](const Payload &, Status) { ++got; });
    }
    sim_.run();
    ASSERT_EQ(got, 2);
    const double fast_ns = fast->opStats().at("work").computeNs.mean();
    const double slow_ns = slow->opStats().at("work").computeNs.mean();
    // Serialization work is unscaled, so the ratio is a bit under 4.
    EXPECT_GT(slow_ns, fast_ns * 2.5);
    EXPECT_LT(slow_ns, fast_ns * 4.5);
}

TEST_F(ResilienceTest, LatencyFactorInflatesRoundTrips)
{
    Service *s = makeService("echo");
    s->addOp("ping", [](HandlerCtx &ctx) { ctx.done(); });

    Tick first = 0, second = 0;
    mesh_.callExternalS("echo", "ping", Payload{},
                        [&](const Payload &, Status) {
                            first = sim_.now();
                        });
    sim_.run();
    ASSERT_GT(first, 0u);

    network_.setLatencyFactor(10.0);
    EXPECT_DOUBLE_EQ(network_.latencyFactor(), 10.0);
    const Tick base = sim_.now();
    mesh_.callExternalS("echo", "ping", Payload{},
                        [&](const Payload &, Status) {
                            second = sim_.now() - base;
                        });
    sim_.run();
    // Two hops at 10x latency dominate the round trip.
    EXPECT_GT(second, first * 3);

    network_.setLatencyFactor(1.0);
    EXPECT_EXIT(network_.setLatencyFactor(0.0),
                ::testing::ExitedWithCode(1), "latency factor");
}

TEST_F(ResilienceTest, DegradedFlagTravelsWithResponse)
{
    Service *s = makeService("partial");
    s->addOp("page", [](HandlerCtx &ctx) {
        ctx.response().degraded = true;
        ctx.done();
    });
    bool degraded = false;
    mesh_.callExternalS("partial", "page", Payload{},
                        [&](const Payload &resp, Status st) {
                            EXPECT_EQ(st, Status::Ok);
                            degraded = resp.degraded;
                        });
    sim_.run();
    EXPECT_TRUE(degraded);
}

TEST_F(ResilienceTest, FaultScriptStaleReplicaSkippedAtApplyTime)
{
    // A replica index out of range is not an arm-time error: the
    // autoscaler may add (or retire) replicas after arm(). The event
    // is skipped with a warning when it fires instead.
    makeService("known", 1, 1);
    FaultScript script;
    FaultEvent e;
    e.kind = FaultEvent::Kind::ReplicaDown;
    e.at = 5 * kMillisecond;
    e.service = "known";
    e.replica = 7; // out of range at apply time
    script.events.push_back(e);
    FaultInjector injector(mesh_, script);
    injector.arm();
    sim_.runUntil(10 * kMillisecond);
    EXPECT_EQ(injector.applied(), 0u);
    EXPECT_EQ(injector.skipped(), 1u);
    EXPECT_FALSE(mesh_.service("known").replicaDown(0));
}

TEST_F(ResilienceTest, FaultScriptUnknownServiceStillFatalAtArm)
{
    FaultScript script;
    FaultEvent e;
    e.kind = FaultEvent::Kind::ReplicaDown;
    e.service = "nonexistent";
    script.events.push_back(e);
    FaultInjector injector(mesh_, script);
    EXPECT_EXIT(injector.arm(), ::testing::ExitedWithCode(1),
                "unknown service");
}

TEST_F(ResilienceTest, PolicyLookupMatchesWildcardsFirstWins)
{
    ResilienceConfig rc;
    EdgeRule exact;
    exact.client = "a";
    exact.server = "b";
    exact.policy.timeout = 1 * kMillisecond;
    EdgeRule wild;
    wild.client = "*";
    wild.server = "b";
    wild.policy.timeout = 9 * kMillisecond;
    rc.edges.push_back(exact);
    rc.edges.push_back(wild);

    EXPECT_EQ(rc.policyFor("a", "b").timeout, 1 * kMillisecond);
    EXPECT_EQ(rc.policyFor("z", "b").timeout, 9 * kMillisecond);
    EXPECT_FALSE(rc.policyFor("z", "q").hasTimeout());
    EXPECT_FALSE(rc.policyFor("z", "q").canRetry());
}

/** Regression: floor(maxEjectFraction * active) truncates to zero for
 * small fleets (0.45 * 2 = 0.9), which used to leave a fully-gray
 * replica of a 2-replica fleet permanently in rotation. The cap now
 * floors at one ejection whenever the fraction is positive and at
 * least two replicas are active. */
TEST_F(ResilienceTest, TwoReplicaFleetCanStillEjectItsGrayReplica)
{
    ResilienceConfig rc;
    rc.outlier.enabled = true;
    rc.outlier.minSamples = 10;
    rc.outlier.latencyFactor = 1.5;
    rc.outlier.maxEjectFraction = 0.45;
    rc.outlier.ejectFor = 50 * kMillisecond;
    mesh_.setResilience(rc);

    Service *s = makeService("pair", 2, 2);
    s->addOp("get", [](HandlerCtx &ctx) {
        ctx.compute(0.5e6, [&ctx] { ctx.done(); });
    });
    s->setReplicaSlow(0, 20.0);

    // Sequential closed loop: each completion feeds the outlier
    // EWMAs and kicks off the next request.
    int completed = 0;
    std::function<void()> next = [&] {
        mesh_.callExternalS("pair", "get", Payload{},
                            [&](const Payload &, Status) {
                                ++completed;
                                EXPECT_LE(s->ejectedReplicaCount(), 1u);
                                if (completed < 80)
                                    next();
                            });
    };
    next();
    sim_.run();

    EXPECT_EQ(completed, 80);
    EXPECT_GE(s->resilienceCounters().outlierEjections, 1u);
}

/** A zero fraction still means "never eject": the small-fleet floor
 * only applies when ejection is allowed at all. */
TEST_F(ResilienceTest, ZeroEjectFractionNeverEjects)
{
    ResilienceConfig rc;
    rc.outlier.enabled = true;
    rc.outlier.minSamples = 10;
    rc.outlier.latencyFactor = 1.5;
    rc.outlier.maxEjectFraction = 0.0;
    mesh_.setResilience(rc);

    Service *s = makeService("pair", 2, 2);
    s->addOp("get", [](HandlerCtx &ctx) {
        ctx.compute(0.5e6, [&ctx] { ctx.done(); });
    });
    s->setReplicaSlow(0, 20.0);

    int completed = 0;
    std::function<void()> next = [&] {
        mesh_.callExternalS("pair", "get", Payload{},
                            [&](const Payload &, Status) {
                                ++completed;
                                if (completed < 80)
                                    next();
                            });
    };
    next();
    sim_.run();

    EXPECT_EQ(completed, 80);
    EXPECT_EQ(s->resilienceCounters().outlierEjections, 0u);
    EXPECT_EQ(s->ejectedReplicaCount(), 0u);
}

} // namespace
} // namespace microscale::svc
