/**
 * @file
 * Tests for the microservice framework: mesh registry, handler
 * chains, worker pools, queueing, replicas and placement.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "svc/mesh.hh"
#include "topo/presets.hh"

namespace microscale::svc
{
namespace
{

class SvcTest : public ::testing::Test
{
  protected:
    SvcTest()
        : machine_(topo::small8()),
          engine_(sim_, machine_),
          kernel_(sim_, machine_, engine_, os::SchedParams{}, 1),
          network_(sim_, quietNet(), 1),
          mesh_(kernel_, network_, RpcCostParams{}, 1)
    {
        kernel_.start();
        profile_.name = "svc-test";
        profile_.ipcBase = 1.0;
        profile_.l3Apki = 1.0;
        profile_.wssBytes = 1024 * 1024;
    }

    static net::NetParams
    quietNet()
    {
        net::NetParams p;
        p.jitterCv = 0.0;
        return p;
    }

    Service *
    makeService(const std::string &name, unsigned replicas = 1,
                unsigned workers = 2)
    {
        ServiceParams p;
        p.name = name;
        p.profile = profile_;
        p.replicas = replicas;
        p.workersPerReplica = workers;
        p.computeCv = 0.0;
        return mesh_.createService(p);
    }

    sim::Simulation sim_;
    topo::Machine machine_;
    cpu::ExecEngine engine_;
    os::Kernel kernel_;
    net::Network network_;
    Mesh mesh_;
    cpu::WorkProfile profile_;
};

TEST_F(SvcTest, RegistryLookup)
{
    Service *s = makeService("alpha");
    EXPECT_EQ(&mesh_.service("alpha"), s);
    EXPECT_TRUE(mesh_.hasService("alpha"));
    EXPECT_FALSE(mesh_.hasService("beta"));
    EXPECT_EQ(mesh_.services().size(), 1u);
}

TEST_F(SvcTest, DeathOnDuplicateService)
{
    makeService("alpha");
    ServiceParams p;
    p.name = "alpha";
    p.profile = profile_;
    EXPECT_EXIT(mesh_.createService(p), ::testing::ExitedWithCode(1),
                "duplicate");
}

TEST_F(SvcTest, DeathOnUnknownService)
{
    EXPECT_EXIT(mesh_.service("ghost"), ::testing::ExitedWithCode(1),
                "unknown service");
}

TEST_F(SvcTest, SimpleOpRoundTrip)
{
    Service *s = makeService("echo");
    s->addOp("ping", [](HandlerCtx &ctx) {
        ctx.response().arg0 = ctx.request().arg0 + 1;
        ctx.response().bytes = 256;
        ctx.done();
    });
    Payload req;
    req.arg0 = 41;
    bool got = false;
    Tick completed = 0;
    mesh_.callExternal("echo", "ping", req, [&](const Payload &resp) {
        got = true;
        completed = sim_.now();
        EXPECT_EQ(resp.arg0, 42u);
        EXPECT_EQ(resp.bytes, 256u);
    });
    sim_.run();
    EXPECT_TRUE(got);
    // Two network hops plus serialization work.
    EXPECT_GE(completed, 2 * quietNet().baseLatencyNs);
    EXPECT_EQ(s->requestsProcessed(), 1u);
    EXPECT_EQ(s->opStats().at("ping").requests, 1u);
    EXPECT_GT(s->opStats().at("ping").serviceTimeNs.mean(), 0.0);
}

TEST_F(SvcTest, ComputeRunsOnWorkerThread)
{
    Service *s = makeService("worker");
    s->addOp("crunch", [](HandlerCtx &ctx) {
        ctx.compute(5e6, [&ctx] { ctx.done(); });
    });
    bool got = false;
    mesh_.callExternal("worker", "crunch", Payload{},
                       [&](const Payload &) { got = true; });
    sim_.run();
    EXPECT_TRUE(got);
    const cpu::PerfCounters agg = s->aggregateCounters();
    // Handler work plus deserialize/serialize netstack work.
    EXPECT_GT(agg.instructions, 5e6);
}

TEST_F(SvcTest, DownstreamCallChains)
{
    Service *front = makeService("front");
    Service *back = makeService("back");
    back->addOp("inner", [](HandlerCtx &ctx) {
        ctx.response().arg0 = 7;
        ctx.done();
    });
    front->addOp("outer", [](HandlerCtx &ctx) {
        ctx.call("back", "inner", Payload{},
                 [&ctx](const Payload &resp) {
                     ctx.response().arg0 = resp.arg0 * 2;
                     ctx.done();
                 });
    });
    std::uint64_t result = 0;
    mesh_.callExternal("front", "outer", Payload{},
                       [&](const Payload &resp) { result = resp.arg0; });
    sim_.run();
    EXPECT_EQ(result, 14u);
    EXPECT_EQ(front->requestsProcessed(), 1u);
    EXPECT_EQ(back->requestsProcessed(), 1u);
}

TEST_F(SvcTest, WorkerPoolLimitsConcurrencyAndQueues)
{
    Service *s = makeService("narrow", 1, 1); // one worker
    s->addOp("slow", [](HandlerCtx &ctx) {
        ctx.compute(10e6, [&ctx] { ctx.done(); });
    });
    int got = 0;
    for (int i = 0; i < 3; ++i) {
        mesh_.callExternal("narrow", "slow", Payload{},
                           [&](const Payload &) { ++got; });
    }
    sim_.run();
    EXPECT_EQ(got, 3);
    // The 2nd and 3rd request waited for the single worker.
    EXPECT_GT(s->queueWaitNs().max(), 0.0);
}

TEST_F(SvcTest, RoundRobinSpreadsAcrossReplicas)
{
    Service *s = makeService("pair", 2, 2);
    s->addOp("work", [](HandlerCtx &ctx) {
        ctx.compute(2e6, [&ctx] { ctx.done(); });
    });
    int got = 0;
    for (int i = 0; i < 6; ++i) {
        mesh_.callExternal("pair", "work", Payload{},
                           [&](const Payload &) { ++got; });
    }
    sim_.run();
    EXPECT_EQ(got, 6);
    // Both replicas' workers retired instructions.
    const auto &workers = s->workers();
    double r0 = 0.0, r1 = 0.0;
    for (const Worker &w : workers) {
        (w.replica == 0 ? r0 : r1) +=
            w.thread->ec().counters().instructions;
    }
    EXPECT_GT(r0, 0.0);
    EXPECT_GT(r1, 0.0);
}

TEST_F(SvcTest, PlacementPinsWorkers)
{
    Service *s = makeService("pinned", 1, 2);
    s->addOp("work", [](HandlerCtx &ctx) {
        ctx.compute(3e6, [&ctx] { ctx.done(); });
    });
    const CpuMask mask = machine_.cpusOfCcx(1);
    s->setReplicaPlacement(0, mask, machine_.nodeOfCcx(1));

    int got = 0;
    for (int i = 0; i < 8; ++i) {
        mesh_.callExternal("pinned", "work", Payload{},
                           [&](const Payload &) { ++got; });
    }
    sim_.run();
    EXPECT_EQ(got, 8);
    for (const Worker &w : s->workers()) {
        EXPECT_TRUE(mask.test(w.thread->ec().lastCpu()))
            << w.thread->name();
        EXPECT_EQ(w.thread->ec().homeNode(), machine_.nodeOfCcx(1));
    }
}

TEST_F(SvcTest, ComputeProfileUsesCustomProfile)
{
    Service *s = makeService("custom");
    cpu::WorkProfile heavy = profile_;
    heavy.name = "heavy";
    static cpu::WorkProfile static_heavy;
    static_heavy = heavy;
    s->addOp("work", [](HandlerCtx &ctx) {
        ctx.computeProfile(static_heavy, 1e6, [&ctx] { ctx.done(); });
    });
    bool got = false;
    mesh_.callExternal("custom", "work", Payload{},
                       [&](const Payload &) { got = true; });
    sim_.run();
    EXPECT_TRUE(got);
}

TEST_F(SvcTest, ZeroComputeContinuesWithoutCpu)
{
    Service *s = makeService("zero");
    s->addOp("noop", [](HandlerCtx &ctx) {
        ctx.compute(0.0, [&ctx] { ctx.done(); });
    });
    bool got = false;
    mesh_.callExternal("zero", "noop", Payload{},
                       [&](const Payload &) { got = true; });
    sim_.run();
    EXPECT_TRUE(got);
}

TEST_F(SvcTest, ResetStatsClearsOpStats)
{
    Service *s = makeService("resettable");
    s->addOp("work", [](HandlerCtx &ctx) { ctx.done(); });
    mesh_.callExternal("resettable", "work", Payload{},
                       [](const Payload &) {});
    sim_.run();
    EXPECT_EQ(s->requestsProcessed(), 1u);
    s->resetStats();
    EXPECT_EQ(s->requestsProcessed(), 0u);
    EXPECT_TRUE(s->opStats().empty());
}

TEST_F(SvcTest, RpcInstructionsScaleWithBytes)
{
    const double small = mesh_.rpcInstructions(512);
    const double large = mesh_.rpcInstructions(64 * 1024);
    EXPECT_GT(large, small);
    RpcCostParams p;
    EXPECT_DOUBLE_EQ(mesh_.rpcInstructions(1024),
                     p.fixedInstructions + p.perKibInstructions);
}

TEST_F(SvcTest, DeathOnUnknownOp)
{
    makeService("svc");
    mesh_.callExternal("svc", "missing", Payload{}, nullptr);
    EXPECT_EXIT(sim_.run(), ::testing::ExitedWithCode(1), "no op");
}

TEST_F(SvcTest, DeathOnDuplicateOp)
{
    Service *s = makeService("svc");
    s->addOp("x", [](HandlerCtx &ctx) { ctx.done(); });
    EXPECT_DEATH(s->addOp("x", [](HandlerCtx &ctx) { ctx.done(); }),
                 "duplicate op");
}

TEST_F(SvcTest, CallAllFansOutAndJoins)
{
    Service *front = makeService("fan-front");
    Service *a = makeService("fan-a");
    Service *b = makeService("fan-b", 1, 4);
    a->addOp("x", [](HandlerCtx &ctx) {
        ctx.compute(8e6, [&ctx] {
            ctx.response().arg0 = 1;
            ctx.done();
        });
    });
    b->addOp("y", [](HandlerCtx &ctx) {
        ctx.compute(8e6, [&ctx] {
            ctx.response().arg0 = 2;
            ctx.done();
        });
    });
    front->addOp("both", [](HandlerCtx &ctx) {
        std::vector<HandlerCtx::CallSpec> calls;
        calls.push_back({"fan-a", "x", Payload{}});
        calls.push_back({"fan-b", "y", Payload{}});
        ctx.callAll(std::move(calls),
                    [&ctx](const std::vector<Payload> &resps) {
                        // Responses arrive in call order.
                        ctx.response().arg0 =
                            resps[0].arg0 * 10 + resps[1].arg0;
                        ctx.done();
                    });
    });
    std::uint64_t result = 0;
    Tick completed = 0;
    mesh_.callExternal("fan-front", "both", Payload{},
                       [&](const Payload &resp) {
                           result = resp.arg0;
                           completed = sim_.now();
                       });
    sim_.run();
    EXPECT_EQ(result, 12u);
    EXPECT_EQ(a->requestsProcessed(), 1u);
    EXPECT_EQ(b->requestsProcessed(), 1u);
    // Parallel legs: the fan-out takes about one leg's time, not two.
    // (Each leg is ~3ms of compute; sequential would be >6ms.)
    EXPECT_LT(completed, 6 * kMillisecond);
}

TEST_F(SvcTest, CallAllEmptyListContinues)
{
    Service *s = makeService("fan-empty");
    s->addOp("none", [](HandlerCtx &ctx) {
        ctx.callAll({}, [&ctx](const std::vector<Payload> &resps) {
            EXPECT_TRUE(resps.empty());
            ctx.done();
        });
    });
    bool got = false;
    mesh_.callExternal("fan-empty", "none", Payload{},
                       [&](const Payload &) { got = true; });
    sim_.run();
    EXPECT_TRUE(got);
}

TEST_F(SvcTest, CallAllManyLegs)
{
    Service *front = makeService("fan-wide");
    Service *leaf = makeService("fan-leaf", 1, 8);
    leaf->addOp("n", [](HandlerCtx &ctx) {
        ctx.compute(1e6, [&ctx] { ctx.done(); });
    });
    front->addOp("wide", [](HandlerCtx &ctx) {
        std::vector<HandlerCtx::CallSpec> calls;
        for (int i = 0; i < 8; ++i)
            calls.push_back({"fan-leaf", "n", Payload{}});
        ctx.callAll(std::move(calls),
                    [&ctx](const std::vector<Payload> &resps) {
                        EXPECT_EQ(resps.size(), 8u);
                        ctx.done();
                    });
    });
    bool got = false;
    mesh_.callExternal("fan-wide", "wide", Payload{},
                       [&](const Payload &) { got = true; });
    sim_.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(leaf->requestsProcessed(), 8u);
}

TEST_F(SvcTest, BreakdownAccountsForAllTime)
{
    Service *front = makeService("bd-front");
    Service *back = makeService("bd-back");
    back->addOp("inner", [](HandlerCtx &ctx) {
        ctx.compute(4e6, [&ctx] { ctx.done(); });
    });
    front->addOp("outer", [](HandlerCtx &ctx) {
        ctx.compute(2e6, [&ctx] {
            ctx.call("bd-back", "inner", Payload{},
                     [&ctx](const Payload &) { ctx.done(); });
        });
    });
    bool got = false;
    mesh_.callExternal("bd-front", "outer", Payload{},
                       [&](const Payload &) { got = true; });
    sim_.run();
    ASSERT_TRUE(got);

    const OpStats &stats = front->opStats().at("outer");
    ASSERT_EQ(stats.requests, 1u);
    const double service = stats.serviceTimeNs.mean();
    const double queue = stats.queueWaitNs.mean();
    const double compute = stats.computeNs.mean();
    const double stall = stats.stallNs.mean();
    EXPECT_GT(compute, 0.0);
    // The downstream call shows up as stall, not compute.
    EXPECT_GT(stall, 0.0);
    EXPECT_NEAR(queue + compute + stall, service, service * 0.01);
    // The idle pipeline has no queue wait.
    EXPECT_LT(queue, kMicrosecond);
    // The back service has no downstream calls: its stall is tiny
    // (only off-CPU scheduling time).
    const OpStats &inner = back->opStats().at("inner");
    EXPECT_LT(inner.stallNs.mean(), inner.computeNs.mean() * 0.2);
}

TEST_F(SvcTest, QueuedRequestsVisible)
{
    Service *s = makeService("queued", 1, 1);
    s->addOp("slow", [](HandlerCtx &ctx) {
        ctx.compute(20e6, [&ctx] { ctx.done(); });
    });
    for (int i = 0; i < 4; ++i) {
        mesh_.callExternal("queued", "slow", Payload{},
                           [](const Payload &) {});
    }
    // Let the transport deliver all four.
    sim_.runUntil(kMillisecond);
    EXPECT_GE(s->queuedRequests(), 2u);
    sim_.run();
    EXPECT_EQ(s->queuedRequests(), 0u);
}

TEST_F(SvcTest, ManyConcurrentRequestsAllComplete)
{
    Service *s = makeService("bulk", 2, 4);
    s->addOp("work", [](HandlerCtx &ctx) {
        ctx.compute(1e6, [&ctx] { ctx.done(); });
    });
    int got = 0;
    for (int i = 0; i < 100; ++i) {
        mesh_.callExternal("bulk", "work", Payload{},
                           [&](const Payload &) { ++got; });
    }
    sim_.run();
    EXPECT_EQ(got, 100);
    EXPECT_EQ(s->requestsProcessed(), 100u);
}

} // namespace
} // namespace microscale::svc
