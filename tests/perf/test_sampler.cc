/**
 * @file
 * Tests for the TimeSeriesSampler on a small live world.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "loadgen/driver.hh"
#include "perf/sampler.hh"
#include "topo/presets.hh"

namespace microscale::perf
{
namespace
{

class SamplerTest : public ::testing::Test
{
  protected:
    SamplerTest()
        : machine_(topo::small8()),
          engine_(sim_, machine_),
          kernel_(sim_, machine_, engine_, os::SchedParams{}, 1),
          network_(sim_, net::NetParams{}, 1),
          mesh_(kernel_, network_, svc::RpcCostParams{}, 1),
          app_(mesh_, appParams(), 1)
    {
        kernel_.start();
    }

    static teastore::AppParams
    appParams()
    {
        teastore::AppParams p;
        p.store.categories = 4;
        p.store.productsPerCategory = 10;
        p.store.users = 10;
        p.webui = {1, 8};
        p.auth = {1, 4};
        p.persistence = {1, 8};
        p.recommender = {1, 2};
        p.image = {1, 8};
        p.registry = {1, 1};
        p.heartbeats = false;
        return p;
    }

    sim::Simulation sim_;
    topo::Machine machine_;
    cpu::ExecEngine engine_;
    os::Kernel kernel_;
    net::Network network_;
    svc::Mesh mesh_;
    teastore::App app_;
};

TEST_F(SamplerTest, CollectsOneSamplePerPeriod)
{
    TimeSeriesSampler sampler(sim_, engine_, kernel_, mesh_,
                              10 * kMillisecond);
    sampler.start();
    sim_.runUntil(105 * kMillisecond);
    sampler.stop();
    EXPECT_EQ(sampler.samples().size(), 10u);
    EXPECT_EQ(sampler.samples().front().at, 10 * kMillisecond);
}

TEST_F(SamplerTest, IdleMachineShowsZeroBusy)
{
    TimeSeriesSampler sampler(sim_, engine_, kernel_, mesh_,
                              10 * kMillisecond);
    sampler.start();
    sim_.runUntil(50 * kMillisecond);
    sampler.stop();
    EXPECT_DOUBLE_EQ(sampler.meanBusyCpus(), 0.0);
    for (const Sample &s : sampler.samples()) {
        EXPECT_EQ(s.completedDelta, 0u);
        EXPECT_EQ(s.busyWorkers, 0u);
    }
}

TEST_F(SamplerTest, BusyUnderLoadAndBounded)
{
    loadgen::ClosedLoopParams load;
    load.users = 20;
    load.meanThink = 5 * kMillisecond;
    loadgen::ClosedLoopDriver driver(app_, loadgen::BrowseMix{}, load,
                                     3);
    driver.measurement().setWindow(0, kSecond);
    driver.start();

    TimeSeriesSampler sampler(sim_, engine_, kernel_, mesh_,
                              20 * kMillisecond);
    sampler.start();
    sim_.runUntil(500 * kMillisecond);
    sampler.stop();
    driver.stopIssuing();

    EXPECT_GT(sampler.meanBusyCpus(), 0.5);
    std::uint64_t completed = 0;
    for (const Sample &s : sampler.samples()) {
        EXPECT_LE(s.busyCpus, machine_.numCpus() + 1e-9);
        EXPECT_GE(s.busyCpus, 0.0);
        EXPECT_GT(s.freqGhz, 0.0);
        completed += s.completedDelta;
    }
    EXPECT_GT(completed, 0u);
}

TEST_F(SamplerTest, CsvHasHeaderAndRows)
{
    TimeSeriesSampler sampler(sim_, engine_, kernel_, mesh_,
                              10 * kMillisecond);
    sampler.start();
    sim_.runUntil(30 * kMillisecond);
    sampler.stop();
    std::ostringstream os;
    sampler.printCsv(os);
    const std::string out = os.str();
    EXPECT_EQ(out.find("time_ms,busy_cpus"), 0u);
    // Header + 3 samples = 4 lines.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST_F(SamplerTest, SamplingDoesNotKeepSimulationAlive)
{
    TimeSeriesSampler sampler(sim_, engine_, kernel_, mesh_,
                              10 * kMillisecond);
    sampler.start();
    // run() must return even though the sampler is armed.
    sim_.run();
    SUCCEED();
}

TEST_F(SamplerTest, DeathOnZeroPeriod)
{
    EXPECT_EXIT(
        TimeSeriesSampler(sim_, engine_, kernel_, mesh_, 0),
        ::testing::ExitedWithCode(1), "period");
}

} // namespace
} // namespace microscale::perf
