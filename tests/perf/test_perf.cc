/**
 * @file
 * Tests for the perf reporting module and the SPEC-like synthetic
 * kernel runner.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "perf/report.hh"
#include "perf/synth.hh"
#include "topo/presets.hh"

namespace microscale::perf
{
namespace
{

cpu::PerfCounters
sampleDelta()
{
    cpu::PerfCounters c;
    c.instructions = 2e9;
    c.cycles = 4e9;
    c.busyNs = 1.6e9;
    c.l3Accesses = 1e7;
    c.l3Misses = 4e6;
    c.branchMisses = 8e6;
    c.icacheMisses = 1.6e7;
    c.kernelInstructions = 5e8;
    c.smtBusyNs = 8e8;
    c.contextSwitches = 2000;
    c.migrations = 200;
    c.ccxMigrations = 20;
    return c;
}

TEST(Report, MakeRowDerivesMetrics)
{
    const PerfRow r = makeRow("svc", sampleDelta(), 2 * kSecond);
    EXPECT_EQ(r.name, "svc");
    EXPECT_DOUBLE_EQ(r.utilizationCpus, 0.8);
    EXPECT_DOUBLE_EQ(r.ipc, 0.5);
    EXPECT_DOUBLE_EQ(r.ghz, 2.5);
    EXPECT_DOUBLE_EQ(r.l3Mpki, 2.0);
    EXPECT_DOUBLE_EQ(r.l3MissRatio, 0.4);
    EXPECT_DOUBLE_EQ(r.branchMpki, 4.0);
    EXPECT_DOUBLE_EQ(r.icacheMpki, 8.0);
    EXPECT_DOUBLE_EQ(r.kernelShare, 0.25);
    EXPECT_DOUBLE_EQ(r.smtShare, 0.5);
    EXPECT_DOUBLE_EQ(r.csPerSec, 1000.0);
    EXPECT_DOUBLE_EQ(r.migrationsPerSec, 100.0);
    EXPECT_DOUBLE_EQ(r.ccxMigrationsPerSec, 10.0);
    EXPECT_DOUBLE_EQ(r.mips, 1000.0);
}

TEST(ReportDeathTest, ZeroWindowPanics)
{
    EXPECT_DEATH(makeRow("x", sampleDelta(), 0), "zero window");
}

TEST(Report, TablesRenderEveryRow)
{
    const std::vector<PerfRow> rows = {
        makeRow("alpha", sampleDelta(), kSecond),
        makeRow("beta", sampleDelta(), kSecond),
    };
    std::ostringstream os;
    microarchTable(rows).print(os);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);
    EXPECT_NE(os.str().find("beta"), std::string::npos);
    std::ostringstream os2;
    activityTable(rows).print(os2);
    EXPECT_NE(os2.str().find("alpha"), std::string::npos);
}

TEST(Synth, SuiteIsSpecLike)
{
    const auto suite = specLikeSuite();
    ASSERT_GE(suite.size(), 4u);
    for (const auto &k : suite) {
        k.profile.validate();
        // Conventional workloads: negligible kernel time.
        EXPECT_LT(k.profile.kernelShare, 0.05) << k.name;
    }
}

TEST(Synth, ComputeKernelHasHighIpcAndNoSwitches)
{
    SynthRunParams p;
    p.threads = 4;
    p.warmup = 20 * kMillisecond;
    p.measure = 50 * kMillisecond;
    const auto suite = specLikeSuite();
    const PerfRow r = runSynthKernel(topo::small8(), suite[0], p);
    EXPECT_GT(r.ipc, 1.5);
    EXPECT_NEAR(r.utilizationCpus, 1.0, 0.05);
    EXPECT_LT(r.csPerSec, 500.0);
    EXPECT_LT(r.kernelShare, 0.05);
}

TEST(Synth, MemoryKernelHasLowerIpcThanCompute)
{
    SynthRunParams p;
    p.threads = 4;
    p.warmup = 20 * kMillisecond;
    p.measure = 50 * kMillisecond;
    const auto suite = specLikeSuite();
    const SynthKernel *compute = nullptr;
    const SynthKernel *chase = nullptr;
    for (const auto &k : suite) {
        if (k.name == "int-compute")
            compute = &k;
        if (k.name == "pointer-chase")
            chase = &k;
    }
    ASSERT_NE(compute, nullptr);
    ASSERT_NE(chase, nullptr);
    const PerfRow rc = runSynthKernel(topo::small8(), *compute, p);
    const PerfRow rm = runSynthKernel(topo::small8(), *chase, p);
    EXPECT_GT(rc.ipc, rm.ipc * 1.5);
    EXPECT_GT(rm.l3Mpki, rc.l3Mpki);
}

TEST(Synth, DeterministicAcrossRuns)
{
    SynthRunParams p;
    p.threads = 2;
    p.warmup = 10 * kMillisecond;
    p.measure = 20 * kMillisecond;
    const auto suite = specLikeSuite();
    const PerfRow a = runSynthKernel(topo::small8(), suite[0], p);
    const PerfRow b = runSynthKernel(topo::small8(), suite[0], p);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.mips, b.mips);
}

TEST(SynthDeathTest, TooManyThreadsFatal)
{
    SynthRunParams p;
    p.threads = 99;
    EXPECT_EXIT(runSynthKernel(topo::small8(), specLikeSuite()[0], p),
                ::testing::ExitedWithCode(1), "cores");
}

} // namespace
} // namespace microscale::perf
