/**
 * @file
 * Tests for the load drivers and the measurement window.
 */

#include <gtest/gtest.h>

#include "loadgen/driver.hh"
#include "net/network.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "topo/presets.hh"

namespace microscale::loadgen
{
namespace
{

using teastore::OpType;

TEST(Measurement, WindowFilters)
{
    Measurement m;
    m.setWindow(100, 200);
    m.record(OpType::Home, 50, 99);   // before window
    m.record(OpType::Home, 90, 100);  // at start: counted
    m.record(OpType::Home, 150, 199); // inside
    m.record(OpType::Home, 150, 200); // at end: excluded
    EXPECT_EQ(m.completed(), 2u);
    EXPECT_EQ(m.completedFor(OpType::Home), 2u);
    EXPECT_EQ(m.completedFor(OpType::Product), 0u);
}

TEST(Measurement, ThroughputUsesWindowLength)
{
    Measurement m;
    m.setWindow(0, kSecond);
    for (int i = 0; i < 500; ++i)
        m.record(OpType::Home, 0, kMillisecond);
    EXPECT_DOUBLE_EQ(m.throughputRps(), 500.0);
}

TEST(Measurement, LatencyDistributionPerOp)
{
    Measurement m;
    m.setWindow(0, kSecond);
    m.record(OpType::Home, 0, 10 * kMillisecond);
    m.record(OpType::Product, 0, 30 * kMillisecond);
    EXPECT_NEAR(m.latencyNsFor(OpType::Home).mean(),
                10.0 * kMillisecond, 1.0);
    EXPECT_NEAR(m.latencyNsFor(OpType::Product).mean(),
                30.0 * kMillisecond, 1.0);
    EXPECT_EQ(m.latencyNs().count(), 2u);
}

TEST(Measurement, StatusAccountingSplitsGoodputFromErrors)
{
    Measurement m;
    m.setWindow(0, kSecond);
    m.record(OpType::Home, 0, kMillisecond, svc::Status::Ok, false);
    m.record(OpType::Home, 0, 2 * kMillisecond, svc::Status::Ok,
             /*degraded=*/true);
    m.record(OpType::Home, 0, 3 * kMillisecond, svc::Status::Timeout,
             false);
    m.record(OpType::Product, 0, 4 * kMillisecond,
             svc::Status::Unavailable, false);
    m.record(OpType::Product, 0, 5 * kMillisecond, svc::Status::Overload,
             false);

    // Every response counts toward throughput; only OK ones toward
    // goodput, latency and per-op counts.
    EXPECT_EQ(m.completed(), 5u);
    EXPECT_DOUBLE_EQ(m.throughputRps(), 5.0);
    EXPECT_DOUBLE_EQ(m.goodputRps(), 2.0);
    EXPECT_EQ(m.errorCount(), 3u);
    EXPECT_EQ(m.statusCount(svc::Status::Ok), 2u);
    EXPECT_EQ(m.statusCount(svc::Status::Timeout), 1u);
    EXPECT_EQ(m.statusCount(svc::Status::Overload), 1u);
    EXPECT_EQ(m.statusCount(svc::Status::Unavailable), 1u);
    EXPECT_EQ(m.degradedCount(), 1u);
    EXPECT_EQ(m.latencyNs().count(), 2u);
    EXPECT_EQ(m.completedFor(OpType::Home), 2u);
    EXPECT_EQ(m.completedFor(OpType::Product), 0u);
    // The legacy 3-arg overload means OK and undegraded.
    m.record(OpType::Home, 0, 6 * kMillisecond);
    EXPECT_EQ(m.statusCount(svc::Status::Ok), 3u);
    EXPECT_EQ(m.degradedCount(), 1u);
}

TEST(MeasurementDeathTest, BadWindowPanics)
{
    Measurement m;
    EXPECT_DEATH(m.setWindow(100, 100), "window");
}

/** Full-stack fixture on the small machine. */
class DriverTest : public ::testing::Test
{
  protected:
    DriverTest()
        : machine_(topo::small8()),
          engine_(sim_, machine_),
          kernel_(sim_, machine_, engine_, os::SchedParams{}, 1),
          network_(sim_, net::NetParams{}, 1),
          mesh_(kernel_, network_, svc::RpcCostParams{}, 1),
          app_(mesh_, appParams(), 1)
    {
        kernel_.start();
    }

  public:
    static teastore::AppParams
    appParams()
    {
        teastore::AppParams p;
        p.store.categories = 4;
        p.store.productsPerCategory = 10;
        p.store.users = 10;
        p.webui = {1, 8};
        p.auth = {1, 4};
        p.persistence = {1, 8};
        p.recommender = {1, 2};
        p.image = {1, 8};
        p.registry = {1, 1};
        p.heartbeats = false;
        return p;
    }

  protected:
    sim::Simulation sim_;
    topo::Machine machine_;
    cpu::ExecEngine engine_;
    os::Kernel kernel_;
    net::Network network_;
    svc::Mesh mesh_;
    teastore::App app_;
};

TEST_F(DriverTest, ClosedLoopCompletesRequests)
{
    ClosedLoopParams p;
    p.users = 4;
    p.meanThink = 20 * kMillisecond;
    ClosedLoopDriver driver(app_, BrowseMix{}, p, 7);
    driver.measurement().setWindow(100 * kMillisecond, kSecond);
    driver.start();
    sim_.runUntil(kSecond);
    EXPECT_GT(driver.issued(), 10u);
    EXPECT_GT(driver.measurement().completed(), 10u);
    EXPECT_GT(driver.measurement().throughputRps(), 0.0);
    EXPECT_GT(driver.measurement().latencyNs().p50(), 0.0);
    driver.stopIssuing();
}

TEST_F(DriverTest, ClosedLoopBoundsInFlight)
{
    ClosedLoopParams p;
    p.users = 3;
    p.meanThink = kMillisecond;
    ClosedLoopDriver driver(app_, BrowseMix{}, p, 7);
    driver.measurement().setWindow(0, kSecond);
    driver.start();
    sim_.runUntil(500 * kMillisecond);
    // In a closed loop, completions can never exceed issues, and the
    // gap is bounded by the user count.
    EXPECT_LE(driver.measurement().completed(), driver.issued());
    EXPECT_LE(driver.issued() - driver.measurement().completed(),
              3u + 3u); // in-flight + think-time slack
    driver.stopIssuing();
}

TEST_F(DriverTest, ClosedLoopDeterministicAcrossRuns)
{
    auto run_once = [](std::uint64_t seed) {
        sim::Simulation sim;
        topo::Machine machine(topo::small8());
        cpu::ExecEngine engine(sim, machine);
        os::Kernel kernel(sim, machine, engine, os::SchedParams{}, 1);
        net::Network network(sim, net::NetParams{}, 1);
        svc::Mesh mesh(kernel, network, svc::RpcCostParams{}, 1);
        teastore::App app(mesh, appParams(), 1);
        kernel.start();
        ClosedLoopParams p;
        p.users = 4;
        p.meanThink = 20 * kMillisecond;
        ClosedLoopDriver driver(app, BrowseMix{}, p, seed);
        driver.measurement().setWindow(0, kSecond);
        driver.start();
        sim.runUntil(kSecond);
        return driver.measurement().completed();
    };
    EXPECT_EQ(run_once(7), run_once(7));
    EXPECT_NE(run_once(7), run_once(8));
}

TEST_F(DriverTest, OpenLoopIssuesAtConfiguredRate)
{
    OpenLoopParams p;
    p.arrivalRps = 200.0;
    OpenLoopDriver driver(app_, BrowseMix{}, p, 7);
    driver.measurement().setWindow(0, 2 * kSecond);
    driver.start();
    sim_.runUntil(2 * kSecond);
    // Poisson(400) arrivals over 2s.
    EXPECT_NEAR(static_cast<double>(driver.issued()), 400.0, 60.0);
    EXPECT_GT(driver.measurement().completed(), 300u);
    driver.stopIssuing();
}

TEST_F(DriverTest, OpenLoopStopCeasesArrivals)
{
    OpenLoopParams p;
    p.arrivalRps = 500.0;
    OpenLoopDriver driver(app_, BrowseMix{}, p, 7);
    driver.measurement().setWindow(0, kSecond);
    driver.start();
    sim_.runUntil(200 * kMillisecond);
    driver.stopIssuing();
    const auto issued = driver.issued();
    sim_.runUntil(kSecond);
    EXPECT_EQ(driver.issued(), issued);
    // In-flight requests drained.
    EXPECT_EQ(driver.inFlight(), 0u);
}

/** Arrival ticks of one fresh-world open-loop run. */
std::vector<Tick>
openLoopArrivals(std::uint64_t seed, const LoadSchedule &schedule,
                 Tick horizon)
{
    sim::Simulation sim;
    topo::Machine machine(topo::small8());
    cpu::ExecEngine engine(sim, machine);
    os::Kernel kernel(sim, machine, engine, os::SchedParams{}, 1);
    net::Network network(sim, net::NetParams{}, 1);
    svc::Mesh mesh(kernel, network, svc::RpcCostParams{}, 1);
    teastore::App app(mesh, DriverTest::appParams(), 1);
    kernel.start();

    std::vector<Tick> log;
    OpenLoopParams p;
    p.arrivalRps = 200.0;
    p.schedule = schedule;
    p.arrivalLog = &log;
    OpenLoopDriver driver(app, BrowseMix{}, p, seed);
    driver.measurement().setWindow(0, horizon);
    driver.start();
    sim.runUntil(horizon);
    driver.stopIssuing();
    return log;
}

TEST_F(DriverTest, OpenLoopArrivalsDeterministicPerSeed)
{
    const LoadSchedule none;
    const auto a = openLoopArrivals(7, none, kSecond);
    const auto b = openLoopArrivals(7, none, kSecond);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_NE(a, openLoopArrivals(8, none, kSecond));
}

TEST_F(DriverTest, ScheduledArrivalsDeterministicPerSeed)
{
    const LoadSchedule spike = LoadSchedule::spike(
        200.0, 1000.0, 200 * kMillisecond, 100 * kMillisecond,
        200 * kMillisecond, 100 * kMillisecond);
    const auto a = openLoopArrivals(7, spike, kSecond);
    const auto b = openLoopArrivals(7, spike, kSecond);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_NE(a, openLoopArrivals(8, spike, kSecond));
}

TEST_F(DriverTest, ScheduledArrivalRateTracksTheSchedule)
{
    // Step from 100 to 1000 req/s halfway through: the two halves
    // must see arrival counts near their own rates, not the mean.
    LoadSchedule sched;
    sched.addPoint(0, 100.0).addStep(kSecond, 1000.0);
    const auto log = openLoopArrivals(7, sched, 2 * kSecond);
    std::size_t lo = 0, hi = 0;
    for (Tick t : log)
        (t < kSecond ? lo : hi)++;
    EXPECT_NEAR(static_cast<double>(lo), 100.0, 40.0);
    EXPECT_NEAR(static_cast<double>(hi), 1000.0, 120.0);
}

TEST_F(DriverTest, OpenLoopCurrentRateFollowsSchedule)
{
    OpenLoopParams p;
    LoadSchedule sched;
    sched.addPoint(0, 100.0).addPoint(kSecond, 300.0);
    p.schedule = sched;
    OpenLoopDriver driver(app_, BrowseMix{}, p, 7);
    driver.start();
    sim_.runUntil(kSecond / 2);
    EXPECT_NEAR(driver.currentRate(), 200.0, 1e-6);
    driver.stopIssuing();
}

TEST_F(DriverTest, DeathOnDoubleStart)
{
    ClosedLoopParams p;
    p.users = 1;
    ClosedLoopDriver driver(app_, BrowseMix{}, p, 7);
    driver.start();
    EXPECT_DEATH(driver.start(), "twice");
}

TEST_F(DriverTest, DeathOnZeroUsers)
{
    ClosedLoopParams p;
    p.users = 0;
    EXPECT_EXIT(ClosedLoopDriver(app_, BrowseMix{}, p, 7),
                ::testing::ExitedWithCode(1), "user");
}

/** Measurement of one fresh-world closed-loop run. */
struct ClosedRun
{
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    double throughputRps = 0.0;
    double p50Ns = 0.0;
};

ClosedRun
closedLoopRun(std::uint64_t seed, unsigned users, unsigned fluid_threshold)
{
    sim::Simulation sim;
    topo::Machine machine(topo::small8());
    cpu::ExecEngine engine(sim, machine);
    os::Kernel kernel(sim, machine, engine, os::SchedParams{}, 1);
    net::Network network(sim, net::NetParams{}, 1);
    svc::Mesh mesh(kernel, network, svc::RpcCostParams{}, 1);
    teastore::App app(mesh, DriverTest::appParams(), 1);
    kernel.start();
    ClosedLoopParams p;
    p.users = users;
    p.meanThink = 50 * kMillisecond;
    p.fluidThreshold = fluid_threshold;
    ClosedLoopDriver driver(app, BrowseMix{}, p, seed);
    driver.measurement().setWindow(500 * kMillisecond, 3 * kSecond);
    driver.start();
    sim.runUntil(3 * kSecond);
    driver.stopIssuing();
    ClosedRun r;
    r.issued = driver.issued();
    r.completed = driver.measurement().completed();
    r.throughputRps = driver.measurement().throughputRps();
    r.p50Ns = driver.measurement().latencyNs().p50();
    return r;
}

TEST_F(DriverTest, FluidMatchesPerUserWithinTolerance)
{
    // The aggregated population model must reproduce the per-user
    // closed loop's operating point: same offered-load statistics in,
    // so throughput and median latency agree within sampling noise.
    const ClosedRun per_user = closedLoopRun(7, 60, 0);
    const ClosedRun fluid = closedLoopRun(7, 60, 1);
    ASSERT_GT(per_user.completed, 100u);
    ASSERT_GT(fluid.completed, 100u);
    EXPECT_NEAR(fluid.throughputRps, per_user.throughputRps,
                0.15 * per_user.throughputRps);
    EXPECT_NEAR(fluid.p50Ns, per_user.p50Ns, 0.35 * per_user.p50Ns);
}

TEST_F(DriverTest, FluidDeterministicPerSeed)
{
    const ClosedRun a = closedLoopRun(7, 40, 1);
    const ClosedRun b = closedLoopRun(7, 40, 1);
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.p50Ns, b.p50Ns);
    EXPECT_NE(closedLoopRun(8, 40, 1).issued, a.issued);
}

TEST_F(DriverTest, FluidKeepsClosedLoopInvariant)
{
    // A closed loop never has more requests in flight than users,
    // fluid or not.
    ClosedLoopParams p;
    p.users = 10;
    p.meanThink = 5 * kMillisecond;
    p.fluidThreshold = 1;
    ClosedLoopDriver driver(app_, BrowseMix{}, p, 7);
    driver.measurement().setWindow(0, kSecond);
    driver.start();
    sim_.runUntil(500 * kMillisecond);
    EXPECT_LE(driver.measurement().completed(), driver.issued());
    EXPECT_LE(driver.issued() - driver.measurement().completed(), 10u);
    driver.stopIssuing();
}

TEST_F(DriverTest, FluidBelowThresholdStaysPerUser)
{
    // users < fluidThreshold keeps the byte-identical per-user path:
    // same seed, same completions as an explicit per-user run.
    const ClosedRun per_user = closedLoopRun(7, 8, 0);
    const ClosedRun gated = closedLoopRun(7, 8, 100);
    EXPECT_EQ(gated.issued, per_user.issued);
    EXPECT_EQ(gated.completed, per_user.completed);
    EXPECT_DOUBLE_EQ(gated.p50Ns, per_user.p50Ns);
}

TEST_F(DriverTest, OpenLoopBatchedArrivalsKeepTheRate)
{
    OpenLoopParams p;
    p.arrivalRps = 200.0;
    p.batchedArrivals = true;
    OpenLoopDriver driver(app_, BrowseMix{}, p, 7);
    driver.measurement().setWindow(0, 2 * kSecond);
    driver.start();
    sim_.runUntil(2 * kSecond);
    // Still Poisson(400) over 2s, just pre-drawn in blocks.
    EXPECT_NEAR(static_cast<double>(driver.issued()), 400.0, 60.0);
    EXPECT_GT(driver.measurement().completed(), 300u);
    driver.stopIssuing();
}

TEST(RetreatBackoff, ExponentialWithCappedShift)
{
    const Tick base = kMillisecond;
    EXPECT_EQ(retreatBackoff(base, 1), base);
    EXPECT_EQ(retreatBackoff(base, 2), base << 1);
    EXPECT_EQ(retreatBackoff(base, 4), base << 3);
    EXPECT_EQ(retreatBackoff(base, 7), base << 6);
    // A long failure streak holds at the 64x ceiling instead of
    // shifting further.
    EXPECT_EQ(retreatBackoff(base, 8), base << 6);
    EXPECT_EQ(retreatBackoff(base, 1u << 30), base << 6);
    // Defensive: zero failures behaves like the first one.
    EXPECT_EQ(retreatBackoff(base, 0), base);
}

TEST(RetreatBackoff, SaturatesInsteadOfOverflowing)
{
    constexpr Tick kCap = kTickNever / 2;
    // Pathological bases saturate at the cap rather than wrapping
    // around Tick or aliasing into the kTickNever sentinel.
    EXPECT_EQ(retreatBackoff(kTickNever, 7), kCap);
    EXPECT_EQ(retreatBackoff(kCap, 2), kCap);
    EXPECT_EQ(retreatBackoff((kCap >> 6) + 1, 7), kCap);
    EXPECT_LT(retreatBackoff(kTickNever - 1, 64), kTickNever);
    // The largest base that still fits shifts exactly, not clamped.
    EXPECT_EQ(retreatBackoff(kCap >> 6, 7), (kCap >> 6) << 6);
}

} // namespace
} // namespace microscale::loadgen
