/**
 * @file
 * Tests for LoadSchedule: rate interpolation, step holds, the factory
 * shapes and the piecewise mean-rate integration.
 */

#include <gtest/gtest.h>

#include "loadgen/schedule.hh"

namespace microscale::loadgen
{
namespace
{

TEST(LoadSchedule, EmptyMeansNoSchedule)
{
    LoadSchedule s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.rateAt(0), 0.0);
    EXPECT_DOUBLE_EQ(s.peakRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.meanRate(0, kSecond), 0.0);
}

TEST(LoadSchedule, ConstantHoldsEverywhere)
{
    LoadSchedule s = LoadSchedule::constant(250.0);
    EXPECT_EQ(s.name(), "constant");
    EXPECT_DOUBLE_EQ(s.rateAt(0), 250.0);
    EXPECT_DOUBLE_EQ(s.rateAt(100 * kSecond), 250.0);
    EXPECT_DOUBLE_EQ(s.peakRate(), 250.0);
    EXPECT_DOUBLE_EQ(s.meanRate(kSecond, 5 * kSecond), 250.0);
}

TEST(LoadSchedule, LinearInterpolationBetweenPoints)
{
    LoadSchedule s;
    s.addPoint(0, 100.0).addPoint(kSecond, 300.0);
    EXPECT_DOUBLE_EQ(s.rateAt(0), 100.0);
    EXPECT_DOUBLE_EQ(s.rateAt(kSecond / 4), 150.0);
    EXPECT_DOUBLE_EQ(s.rateAt(kSecond / 2), 200.0);
    EXPECT_DOUBLE_EQ(s.rateAt(3 * kSecond / 4), 250.0);
    EXPECT_DOUBLE_EQ(s.rateAt(kSecond), 300.0);
}

TEST(LoadSchedule, ClampsBeforeFirstAndAfterLastPoint)
{
    LoadSchedule s;
    s.addPoint(kSecond, 100.0).addPoint(2 * kSecond, 400.0);
    EXPECT_DOUBLE_EQ(s.rateAt(0), 100.0);
    EXPECT_DOUBLE_EQ(s.rateAt(10 * kSecond), 400.0);
}

TEST(LoadSchedule, StepHoldsPreviousRateUntilBoundary)
{
    LoadSchedule s;
    s.addPoint(0, 100.0).addStep(kSecond, 400.0);
    EXPECT_DOUBLE_EQ(s.rateAt(kSecond - 1), 100.0);
    EXPECT_DOUBLE_EQ(s.rateAt(kSecond), 400.0);
    EXPECT_DOUBLE_EQ(s.rateAt(2 * kSecond), 400.0);
    // The hold region integrates as a rectangle at the old rate.
    EXPECT_DOUBLE_EQ(s.meanRate(0, kSecond), 100.0);
}

TEST(LoadSchedule, SpikeShape)
{
    const Tick at = 10 * kSecond;
    LoadSchedule s = LoadSchedule::spike(500.0, 4000.0, at, 2 * kSecond,
                                         4 * kSecond, kSecond);
    EXPECT_EQ(s.name(), "spike");
    EXPECT_DOUBLE_EQ(s.rateAt(0), 500.0);
    EXPECT_DOUBLE_EQ(s.rateAt(at), 500.0);
    // Halfway up the ramp.
    EXPECT_DOUBLE_EQ(s.rateAt(at + kSecond), 2250.0);
    // On the plateau.
    EXPECT_DOUBLE_EQ(s.rateAt(at + 3 * kSecond), 4000.0);
    // Back at base after the down-ramp, forever.
    EXPECT_DOUBLE_EQ(s.rateAt(at + 7 * kSecond), 500.0);
    EXPECT_DOUBLE_EQ(s.rateAt(at + 100 * kSecond), 500.0);
    EXPECT_DOUBLE_EQ(s.peakRate(), 4000.0);
}

TEST(LoadSchedule, DiurnalStartsAtTroughAndCrests)
{
    const Tick period = 8 * kSecond;
    LoadSchedule s =
        LoadSchedule::diurnal(600.0, 2400.0, period, 2 * period);
    EXPECT_EQ(s.name(), "diurnal");
    EXPECT_DOUBLE_EQ(s.rateAt(0), 600.0);
    // Crest half a period in; the sine is sampled into linear
    // segments, so allow a small discretization error.
    EXPECT_NEAR(s.rateAt(period / 2), 3000.0, 30.0);
    // Back near the trough after a full period.
    EXPECT_NEAR(s.rateAt(period), 600.0, 30.0);
    EXPECT_LE(s.peakRate(), 3000.0 + 1e-9);
    // Mean over a whole period = base + amplitude/2.
    EXPECT_NEAR(s.meanRate(0, period), 1800.0, 30.0);
    for (Tick t = 0; t <= 2 * period; t += period / 16)
        EXPECT_GE(s.rateAt(t), 600.0 - 1e-9);
}

TEST(LoadSchedule, MeanRateIntegratesPiecewise)
{
    LoadSchedule s;
    s.addPoint(0, 100.0)
        .addPoint(kSecond, 100.0)
        .addPoint(2 * kSecond, 300.0);
    // Flat second, then a ramp averaging 200.
    EXPECT_DOUBLE_EQ(s.meanRate(0, kSecond), 100.0);
    EXPECT_DOUBLE_EQ(s.meanRate(kSecond, 2 * kSecond), 200.0);
    EXPECT_DOUBLE_EQ(s.meanRate(0, 2 * kSecond), 150.0);
    // Partial ramp segment: rates 150..250 average 200.
    EXPECT_DOUBLE_EQ(
        s.meanRate(kSecond + kSecond / 4, kSecond + 3 * kSecond / 4),
        200.0);
    // Window extending past the last point picks up the flat tail.
    EXPECT_DOUBLE_EQ(s.meanRate(2 * kSecond, 4 * kSecond), 300.0);
    EXPECT_DOUBLE_EQ(s.meanRate(0, 4 * kSecond), 225.0);
}

TEST(LoadSchedule, MeanRateOfSpikeMatchesClosedForm)
{
    // base 1s, ramp 1s (avg 1500), hold 1s at 2500, ramp 1s, base 1s.
    LoadSchedule s =
        LoadSchedule::spike(500.0, 2500.0, kSecond, kSecond, kSecond,
                            kSecond);
    EXPECT_DOUBLE_EQ(s.meanRate(0, 5 * kSecond),
                     (500.0 + 1500.0 + 2500.0 + 1500.0 + 500.0) / 5.0);
}

TEST(LoadScheduleDeathTest, RejectsBadInput)
{
    LoadSchedule s;
    s.addPoint(kSecond, 100.0);
    EXPECT_DEATH(s.addPoint(0, 200.0), "back in time");
    EXPECT_DEATH(s.addPoint(2 * kSecond, -1.0), ">= 0");
    EXPECT_DEATH(LoadSchedule::constant(0.0), "positive");
    EXPECT_DEATH(LoadSchedule::spike(100.0, 50.0, 0, 0, 0, 0),
                 "base <= peak");
    EXPECT_DEATH(LoadSchedule::diurnal(100.0, 10.0, 0, kSecond),
                 "period");
}

} // namespace
} // namespace microscale::loadgen
