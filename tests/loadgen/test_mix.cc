/**
 * @file
 * Tests for the browse-profile Markov mix.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/random.hh"
#include "loadgen/mix.hh"

namespace microscale::loadgen
{
namespace
{

using teastore::OpType;

TEST(BrowseMix, StationarySumsToOne)
{
    BrowseMix mix;
    double sum = 0.0;
    for (OpType op : teastore::allOps())
        sum += mix.stationaryWeight(op);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(BrowseMix, BrowsingOpsDominate)
{
    BrowseMix mix;
    // Category and product views dominate the browse profile.
    EXPECT_GT(mix.stationaryWeight(OpType::Category), 0.25);
    EXPECT_GT(mix.stationaryWeight(OpType::Product), 0.10);
    EXPECT_LT(mix.stationaryWeight(OpType::Checkout), 0.10);
    EXPECT_LT(mix.stationaryWeight(OpType::Login), 0.10);
}

TEST(BrowseMix, NextFollowsTransitionRow)
{
    BrowseMix mix;
    Rng rng(1);
    // From Checkout only Home (0.6) and Category (0.4) are reachable.
    std::map<OpType, int> seen;
    for (int i = 0; i < 10000; ++i)
        ++seen[mix.next(OpType::Checkout, rng)];
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_NEAR(seen[OpType::Home] / 10000.0, 0.6, 0.02);
    EXPECT_NEAR(seen[OpType::Category] / 10000.0, 0.4, 0.02);
}

TEST(BrowseMix, StationaryMatchesLongWalk)
{
    BrowseMix mix;
    Rng rng(2);
    std::map<OpType, int> seen;
    OpType cur = mix.initialOp();
    constexpr int kSteps = 200000;
    for (int i = 0; i < kSteps; ++i) {
        cur = mix.next(cur, rng);
        ++seen[cur];
    }
    for (OpType op : teastore::allOps()) {
        EXPECT_NEAR(seen[op] / static_cast<double>(kSteps),
                    mix.stationaryWeight(op), 0.01)
            << teastore::opName(op);
    }
}

TEST(BrowseMix, SampleStationaryMatchesWeights)
{
    BrowseMix mix;
    Rng rng(3);
    std::map<OpType, int> seen;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i)
        ++seen[mix.sampleStationary(rng)];
    for (OpType op : teastore::allOps()) {
        EXPECT_NEAR(seen[op] / static_cast<double>(kDraws),
                    mix.stationaryWeight(op), 0.01);
    }
}

TEST(BrowseMix, CustomMatrixAccepted)
{
    std::array<std::array<double, teastore::kNumOps>, teastore::kNumOps>
        t{};
    for (auto &row : t)
        row[0] = 1.0; // everything goes Home
    BrowseMix mix(t);
    EXPECT_NEAR(mix.stationaryWeight(OpType::Home), 1.0, 1e-9);
}

TEST(BrowseMixDeathTest, RejectsNonStochasticRow)
{
    std::array<std::array<double, teastore::kNumOps>, teastore::kNumOps>
        t{};
    t[0][0] = 0.5; // row sums to 0.5
    for (unsigned r = 1; r < teastore::kNumOps; ++r)
        t[r][0] = 1.0;
    EXPECT_EXIT(BrowseMix{t}, ::testing::ExitedWithCode(1), "sums to");
}

} // namespace
} // namespace microscale::loadgen
