/**
 * @file
 * Round-trip test for the bench reporting layer: a SeriesReporter must
 * emit a BENCH_<stem>.json that core::parseJson accepts and that
 * carries the recorded points and tables.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "base/table.hh"
#include "common.hh"
#include "core/json.hh"

namespace microscale
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

TEST(BenchReporter, EmitsParsableJsonWithPointsAndTables)
{
    const std::string dir = ::testing::TempDir();
    ASSERT_EQ(setenv("MICROSCALE_BENCH_OUT_DIR", dir.c_str(), 1), 0);

    {
        benchx::SeriesReporter rep("TEST-1", "test_reporter",
                                   "reporter round trip");
        core::RunResult a;
        a.throughputRps = 1234.5;
        a.latency.p99Ms = 42.0;
        a.eventsProcessed = 1000;
        core::RunResult b;
        b.throughputRps = 2469.0;
        b.latency.p99Ms = 21.0;
        b.eventsProcessed = 234;
        rep.add("point/one", a);
        rep.add("point \"two\"", b);

        TextTable t({"col a", "col b"});
        t.row().cell("x").cell(1.5, 1);
        t.row().cell("y").cell(2.5, 1);
        rep.table(t, "a stored table");
        rep.finish();
    }
    ASSERT_EQ(unsetenv("MICROSCALE_BENCH_OUT_DIR"), 0);

    const std::string path = dir + "/BENCH_test_reporter.json";
    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty()) << path;

    const core::JsonValue v = core::parseJson(text);
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("artifact").stringValue, "TEST-1");
    EXPECT_EQ(v.at("caption").stringValue, "reporter round trip");
    ASSERT_TRUE(v.at("jobs").isNumber());
    EXPECT_GE(v.at("jobs").numberValue, 1.0);

    // Schema v3 speed stamps: elapsed wall clock plus the engine
    // events summed over every recorded point.
    EXPECT_DOUBLE_EQ(v.at("schema_version").numberValue,
                     benchx::kBenchSchemaVersion);
    ASSERT_TRUE(v.at("wall_seconds").isNumber());
    EXPECT_GE(v.at("wall_seconds").numberValue, 0.0);
    ASSERT_TRUE(v.at("events_processed").isNumber());
    EXPECT_DOUBLE_EQ(v.at("events_processed").numberValue, 1234.0);

    const core::JsonValue &points = v.at("points");
    ASSERT_TRUE(points.isArray());
    ASSERT_EQ(points.elements.size(), 2u);
    EXPECT_EQ(points.elements[0].at("label").stringValue, "point/one");
    EXPECT_EQ(points.elements[1].at("label").stringValue,
              "point \"two\"");
    EXPECT_DOUBLE_EQ(
        points.elements[0].at("result").at("throughput_rps").numberValue,
        1234.5);
    EXPECT_DOUBLE_EQ(points.elements[1]
                         .at("result")
                         .at("latency")
                         .at("p99_ms")
                         .numberValue,
                     21.0);

    const core::JsonValue &tables = v.at("tables");
    ASSERT_TRUE(tables.isArray());
    ASSERT_EQ(tables.elements.size(), 1u);
    const core::JsonValue &table = tables.elements[0];
    EXPECT_EQ(table.at("caption").stringValue, "a stored table");
    ASSERT_EQ(table.at("headers").elements.size(), 2u);
    EXPECT_EQ(table.at("headers").elements[0].stringValue, "col a");
    ASSERT_EQ(table.at("rows").elements.size(), 2u);
    EXPECT_EQ(table.at("rows").elements[0].elements[0].stringValue, "x");
    EXPECT_EQ(table.at("rows").elements[1].elements[1].stringValue,
              "2.5");
}

TEST(BenchReporter, FailedPointsCarryErrorField)
{
    const std::string dir = ::testing::TempDir();
    ASSERT_EQ(setenv("MICROSCALE_BENCH_OUT_DIR", dir.c_str(), 1), 0);

    {
        benchx::SeriesReporter rep("TEST-2", "test_reporter_err",
                                   "error round trip");
        core::RunResult ok;
        ok.throughputRps = 10.0;
        rep.add("good", ok);
        rep.addError("bad", "worker died: \"oops\"");
        rep.addError("worse", "");
        rep.finish();
    }
    ASSERT_EQ(unsetenv("MICROSCALE_BENCH_OUT_DIR"), 0);

    const std::string path = dir + "/BENCH_test_reporter_err.json";
    const core::JsonValue v = core::parseJson(slurp(path));
    const core::JsonValue &points = v.at("points");
    ASSERT_EQ(points.elements.size(), 3u);

    // The good point has a result and no error.
    EXPECT_EQ(points.elements[0].find("error"), nullptr);
    EXPECT_TRUE(points.elements[0].at("result").isObject());

    // Failed points carry only label + error (no result to trust).
    EXPECT_EQ(points.elements[1].at("label").stringValue, "bad");
    EXPECT_EQ(points.elements[1].at("error").stringValue,
              "worker died: \"oops\"");
    EXPECT_EQ(points.elements[1].find("result"), nullptr);
    // An empty message is normalized so json_check can always print it.
    EXPECT_EQ(points.elements[2].at("error").stringValue,
              "unknown error");
}

TEST(BenchReporter, ResilienceBlockOnlyWhenActive)
{
    core::RunResult healthy;
    healthy.throughputRps = 5.0;
    const std::string plain = core::toJson(healthy);
    EXPECT_EQ(plain.find("\"resilience\""), std::string::npos);
    EXPECT_EQ(plain.find("\"unavailable\""), std::string::npos);

    core::RunResult chaotic = healthy;
    chaotic.resilience.active = true;
    chaotic.resilience.goodputRps = 4.5;
    chaotic.resilience.timeoutCount = 7;
    const std::string rich = core::toJson(chaotic);
    const core::JsonValue v = core::parseJson(rich);
    EXPECT_DOUBLE_EQ(v.at("resilience").at("goodput_rps").numberValue,
                     4.5);
    EXPECT_DOUBLE_EQ(v.at("resilience").at("timeout").numberValue, 7.0);
}

TEST(BenchReporter, OutDirFallsBackToCwd)
{
    ASSERT_EQ(unsetenv("MICROSCALE_BENCH_OUT_DIR"), 0);
    EXPECT_EQ(benchx::outDir(), ".");
}

} // namespace
} // namespace microscale
