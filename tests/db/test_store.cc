/**
 * @file
 * Tests for the in-memory relational store.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "db/store.hh"

namespace microscale::db
{
namespace
{

StoreParams
smallParams()
{
    StoreParams p;
    p.categories = 5;
    p.productsPerCategory = 10;
    p.users = 20;
    return p;
}

TEST(Store, SeededSizes)
{
    Store s(smallParams(), 1);
    EXPECT_EQ(s.categoryCount(), 5u);
    EXPECT_EQ(s.productCount(), 50u);
    EXPECT_EQ(s.userCount(), 20u);
    EXPECT_EQ(s.orderCount(), 0u);
}

TEST(Store, DeterministicSeeding)
{
    Store a(smallParams(), 7);
    Store b(smallParams(), 7);
    QueryCost ca, cb;
    EXPECT_EQ(a.product(3, ca)->priceCents, b.product(3, cb)->priceCents);
    EXPECT_EQ(a.product(3, ca)->imageBytes, b.product(3, cb)->imageBytes);
}

TEST(Store, ListCategoriesTouchesAllRows)
{
    Store s(smallParams(), 1);
    QueryCost c;
    const auto ids = s.listCategories(c);
    EXPECT_EQ(ids.size(), 5u);
    EXPECT_EQ(c.rowsTouched, 5u);
    EXPECT_GE(c.indexDescents, 1u);
}

TEST(Store, ProductsInCategoryPaging)
{
    Store s(smallParams(), 1);
    QueryCost c;
    const auto page0 = s.productsInCategory(1, 0, 4, c);
    EXPECT_EQ(page0.size(), 4u);
    const auto page2 = s.productsInCategory(1, 8, 4, c);
    EXPECT_EQ(page2.size(), 2u); // only 10 products in the category
    const auto beyond = s.productsInCategory(1, 100, 4, c);
    EXPECT_TRUE(beyond.empty());
}

TEST(Store, PagingCostGrowsWithOffset)
{
    Store s(smallParams(), 1);
    QueryCost first, deep;
    s.productsInCategory(1, 0, 4, first);
    s.productsInCategory(1, 6, 4, deep);
    EXPECT_GT(deep.rowsTouched, first.rowsTouched);
}

TEST(Store, UnknownCategoryIsEmpty)
{
    Store s(smallParams(), 1);
    QueryCost c;
    EXPECT_TRUE(s.productsInCategory(99, 0, 4, c).empty());
}

TEST(Store, ProductLookup)
{
    Store s(smallParams(), 1);
    QueryCost c;
    const Product *p = s.product(1, c);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->id, 1u);
    EXPECT_EQ(p->category, 1u);
    EXPECT_GE(p->priceCents, 199u);
    EXPECT_GE(p->imageBytes, 8u * 1024);
    EXPECT_EQ(s.product(9999, c), nullptr);
}

TEST(Store, UserLookupByIdAndName)
{
    Store s(smallParams(), 1);
    QueryCost c;
    const User *u = s.user(5, c);
    ASSERT_NE(u, nullptr);
    EXPECT_EQ(u->name, "user-5");
    const User *by_name = s.userByName("user-5", c);
    ASSERT_NE(by_name, nullptr);
    EXPECT_EQ(by_name->id, 5u);
    EXPECT_EQ(s.userByName("nobody", c), nullptr);
    EXPECT_EQ(u->passwordHash, s.passwordHashOf(5));
}

TEST(Store, PlaceAndReadOrders)
{
    Store s(smallParams(), 1);
    QueryCost c;
    std::vector<OrderItem> items = {{1, 2, 500}, {3, 1, 750}};
    const OrderId id = s.placeOrder(4, items, 12345, c);
    EXPECT_EQ(s.orderCount(), 1u);
    EXPECT_GT(c.rowsTouched, 0u);

    const Order *o = s.order(id, c);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->user, 4u);
    EXPECT_EQ(o->items.size(), 2u);
    EXPECT_EQ(o->totalCents, 2u * 500 + 750u);
    EXPECT_EQ(o->placedAtTick, 12345u);
}

TEST(Store, OrdersOfUserNewestFirst)
{
    Store s(smallParams(), 1);
    QueryCost c;
    std::vector<OrderItem> items = {{1, 1, 100}};
    const OrderId first = s.placeOrder(2, items, 1, c);
    const OrderId second = s.placeOrder(2, items, 2, c);
    const auto ids = s.ordersOfUser(2, 10, c);
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], second);
    EXPECT_EQ(ids[1], first);
    // Limit respected.
    EXPECT_EQ(s.ordersOfUser(2, 1, c).size(), 1u);
    // Other users unaffected.
    EXPECT_TRUE(s.ordersOfUser(3, 10, c).empty());
}

TEST(Store, SamplersReturnValidIds)
{
    Store s(smallParams(), 1);
    Rng rng(3);
    QueryCost c;
    for (int i = 0; i < 200; ++i) {
        EXPECT_NE(s.product(s.sampleProduct(rng), c), nullptr);
        EXPECT_NE(s.category(s.sampleCategory(rng), c), nullptr);
        EXPECT_NE(s.user(s.sampleUser(rng), c), nullptr);
    }
}

TEST(Store, QueryCostMerge)
{
    QueryCost a{10, 2};
    QueryCost b{5, 1};
    a.merge(b);
    EXPECT_EQ(a.rowsTouched, 15u);
    EXPECT_EQ(a.indexDescents, 3u);
}

TEST(StoreDeathTest, EmptyOrderPanics)
{
    Store s(smallParams(), 1);
    QueryCost c;
    EXPECT_DEATH(s.placeOrder(1, {}, 0, c), "no items");
}

TEST(StoreDeathTest, ZeroUsersFatal)
{
    StoreParams p = smallParams();
    p.users = 0;
    EXPECT_EXIT(Store(p, 1), ::testing::ExitedWithCode(1), "user");
}

} // namespace
} // namespace microscale::db
