/**
 * @file
 * Tests for per-request tracing and critical-path attribution:
 * synthetic span DAGs with hand-computed exact decompositions, the
 * runExperiment integration (determinism, zero perturbation of the
 * untraced metrics, sampling), and the Chrome trace_event export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "core/json.hh"
#include "topo/presets.hh"
#include "trace/critical_path.hh"
#include "trace/export.hh"
#include "trace/trace.hh"

namespace microscale::trace
{
namespace
{

core::ExperimentConfig
fastConfig()
{
    core::ExperimentConfig c;
    c.machine = topo::small8();
    c.app.store.categories = 4;
    c.app.store.productsPerCategory = 10;
    c.app.store.users = 20;
    c.sizing.webui = {1, 8};
    c.sizing.auth = {1, 4};
    c.sizing.persistence = {1, 8};
    c.sizing.recommender = {1, 2};
    c.sizing.image = {1, 8};
    c.sizing.registry = {1, 1};
    c.load.users = 40;
    c.load.meanThink = 50 * kMillisecond;
    c.warmup = 150 * kMillisecond;
    c.measure = 300 * kMillisecond;
    return c;
}

/** Single-hop trace: client -> webui, no children. Every component
 * is hand-computed; the partition must be exact, not approximate. */
TEST(CriticalPath, SingleHopExactPartition)
{
    Trace t(1);
    const SpanId id = t.addSpan();
    Span &s = t.span(id);
    s.client = "external";
    s.service = "webui";
    s.op = "home";
    s.clientIssue = 100;
    s.arrived = 110;
    s.dispatched = 130;
    s.finish = 400;
    s.clientComplete = 420;
    s.computeNs = 200.0;

    Attribution acc;
    ASSERT_TRUE(attributeTrace(t, acc));
    EXPECT_EQ(acc.traces, 1u);
    EXPECT_DOUBLE_EQ(acc.e2eNs, 320.0);
    const ServiceAttribution &w = acc.services.at("webui");
    EXPECT_DOUBLE_EQ(w.queueNs, 20.0);   // 130 - 110
    EXPECT_DOUBLE_EQ(w.computeNs, 200.0);
    EXPECT_DOUBLE_EQ(w.stallNs, 70.0);   // (400-130) - 200
    EXPECT_DOUBLE_EQ(w.networkNs, 30.0); // wall 320 - server 290
    EXPECT_DOUBLE_EQ(w.fanoutNs, 0.0);
    EXPECT_DOUBLE_EQ(acc.unattributedNs, 0.0);
    EXPECT_DOUBLE_EQ(acc.attributedNs(), acc.e2eNs);
}

/** Nested trace with a single-call group and a two-leg fan-out: the
 * gating leg's slack books as the caller's fan-out wait, the group
 * walls cover the handler's blocked time exactly. */
TEST(CriticalPath, FanoutExactPartition)
{
    Trace t(1);
    const SpanId root = t.addSpan();
    {
        Span &s = t.span(root);
        s.service = "webui";
        s.clientIssue = 0;
        s.arrived = 10;
        s.dispatched = 20;
        s.finish = 500;
        s.clientComplete = 510;
        s.computeNs = 100.0;
    }
    const SpanId auth = t.addSpan();
    {
        Span &s = t.span(auth);
        s.parent = root;
        s.group = 1;
        s.service = "auth";
        s.clientIssue = 30;
        s.arrived = 35;
        s.dispatched = 40;
        s.finish = 100;
        s.clientComplete = 105;
        s.computeNs = 60.0;
    }
    const SpanId persistence = t.addSpan();
    {
        Span &s = t.span(persistence);
        s.parent = root;
        s.group = 2;
        s.service = "persistence";
        s.clientIssue = 120;
        s.arrived = 125;
        s.dispatched = 125;
        s.finish = 200;
        s.clientComplete = 205;
        s.computeNs = 70.0;
    }
    const SpanId image = t.addSpan();
    {
        Span &s = t.span(image);
        s.parent = root;
        s.group = 2;
        s.service = "image";
        s.clientIssue = 120;
        s.arrived = 122;
        s.dispatched = 130;
        s.finish = 280;
        s.clientComplete = 300; // gating leg of group 2
        s.computeNs = 100.0;
    }

    Attribution acc;
    ASSERT_TRUE(attributeTrace(t, acc));
    EXPECT_DOUBLE_EQ(acc.e2eNs, 510.0);

    const ServiceAttribution &w = acc.services.at("webui");
    EXPECT_DOUBLE_EQ(w.queueNs, 10.0);
    EXPECT_DOUBLE_EQ(w.computeNs, 100.0);
    // window 480, covered by group walls 75 + 180 => uncovered 225.
    EXPECT_DOUBLE_EQ(w.stallNs, 125.0);
    // Gating image leg: wall 180 - server 158 = 22 of fan-out wait.
    EXPECT_DOUBLE_EQ(w.fanoutNs, 22.0);
    EXPECT_DOUBLE_EQ(w.networkNs, 20.0); // root slack 510 - 490

    const ServiceAttribution &a = acc.services.at("auth");
    EXPECT_DOUBLE_EQ(a.queueNs, 5.0);
    EXPECT_DOUBLE_EQ(a.computeNs, 60.0);
    EXPECT_DOUBLE_EQ(a.stallNs, 0.0);
    // Single-call group: slack stays with the callee as network time.
    EXPECT_DOUBLE_EQ(a.networkNs, 10.0); // wall 75 - server 65

    // The non-gating leg is off the critical path entirely.
    EXPECT_EQ(acc.services.count("persistence"), 0u);

    const ServiceAttribution &i = acc.services.at("image");
    EXPECT_DOUBLE_EQ(i.queueNs, 8.0);
    EXPECT_DOUBLE_EQ(i.computeNs, 100.0);
    EXPECT_DOUBLE_EQ(i.stallNs, 50.0);

    EXPECT_DOUBLE_EQ(acc.unattributedNs, 0.0);
    EXPECT_DOUBLE_EQ(acc.attributedNs(), acc.e2eNs);
}

/** Retry lineage: the failed attempt's wall books as shed, the gap
 * before the retry as backoff, and the final attempt decomposes
 * normally - summing to the logical call's wall exactly. */
TEST(CriticalPath, RetryExactPartition)
{
    Trace t(1);
    const SpanId root = t.addSpan();
    {
        Span &s = t.span(root);
        s.service = "webui";
        s.clientIssue = 0;
        s.arrived = 5;
        s.dispatched = 10;
        s.finish = 600;
        s.clientComplete = 610;
        s.computeNs = 50.0;
    }
    const SpanId first = t.addSpan();
    {
        Span &s = t.span(first);
        s.parent = root;
        s.group = 1;
        s.service = "persistence";
        s.clientIssue = 20;
        s.clientComplete = 120;
        s.clientStatus = svc::Status::Timeout;
    }
    const SpanId retry = t.addSpan();
    {
        Span &s = t.span(retry);
        s.parent = root;
        s.group = 1;
        s.attempt = 2;
        s.retryOf = first;
        s.backoffBefore = 30;
        s.service = "persistence";
        s.clientIssue = 150;
        s.arrived = 155;
        s.dispatched = 160;
        s.finish = 250;
        s.clientComplete = 260;
        s.computeNs = 80.0;
    }

    Attribution acc;
    ASSERT_TRUE(attributeTrace(t, acc));
    EXPECT_DOUBLE_EQ(acc.e2eNs, 610.0);

    const ServiceAttribution &p = acc.services.at("persistence");
    EXPECT_DOUBLE_EQ(p.backoffNs, 30.0);
    EXPECT_DOUBLE_EQ(p.shedNs, 100.0);   // failed attempt 20..120
    EXPECT_DOUBLE_EQ(p.queueNs, 5.0);
    EXPECT_DOUBLE_EQ(p.computeNs, 80.0);
    EXPECT_DOUBLE_EQ(p.stallNs, 10.0);
    EXPECT_DOUBLE_EQ(p.networkNs, 15.0); // final wall 110 - server 95

    const ServiceAttribution &w = acc.services.at("webui");
    EXPECT_DOUBLE_EQ(w.queueNs, 5.0);
    EXPECT_DOUBLE_EQ(w.computeNs, 50.0);
    // window 590, group wall 20..260 covers 240 => uncovered 350.
    EXPECT_DOUBLE_EQ(w.stallNs, 300.0);
    EXPECT_DOUBLE_EQ(w.networkNs, 15.0);

    EXPECT_DOUBLE_EQ(acc.unattributedNs, 0.0);
    EXPECT_DOUBLE_EQ(acc.attributedNs(), acc.e2eNs);
}

/** Hedged call whose hedge leg wins: the cancelled first leg is never
 * billed (no shed, no backoff — it ran concurrently with the winner),
 * and the winner's wall spans the whole call interval from the first
 * leg's issue, so the partition stays exact. Every number below is
 * hand-computed. */
TEST(CriticalPath, HedgeWinExactPartitionCancelledLegUnbilled)
{
    Trace t(1);
    const SpanId root = t.addSpan();
    {
        Span &s = t.span(root);
        s.service = "webui";
        s.clientIssue = 0;
        s.arrived = 5;
        s.dispatched = 10;
        s.finish = 600;
        s.clientComplete = 610;
        s.computeNs = 50.0;
    }
    // First leg: landed on the straggler, cancelled when the hedge
    // leg's response settled the call.
    const SpanId first = t.addSpan();
    {
        Span &s = t.span(first);
        s.parent = root;
        s.group = 1;
        s.service = "storage";
        s.clientIssue = 20;
        s.arrived = 25;
        s.dispatched = 30;
        s.clientComplete = 190; // cancellation tick
        s.cancelled = true;
    }
    // Hedge leg: issued after the 100-tick hedge delay, wins.
    const SpanId hedgeLeg = t.addSpan();
    {
        Span &s = t.span(hedgeLeg);
        s.parent = root;
        s.group = 1;
        s.attempt = 2;
        s.retryOf = first;
        s.hedge = true;
        s.service = "storage";
        s.clientIssue = 120;
        s.arrived = 125;
        s.dispatched = 130;
        s.finish = 180;
        s.clientComplete = 190;
        s.computeNs = 40.0;
    }

    Attribution acc;
    ASSERT_TRUE(attributeTrace(t, acc));
    EXPECT_DOUBLE_EQ(acc.e2eNs, 610.0);

    const ServiceAttribution &st = acc.services.at("storage");
    // Winner wall = [first issue 20, hedge complete 190] = 170;
    // server window [125, 180] = 55 of it, the rest is transport.
    EXPECT_DOUBLE_EQ(st.queueNs, 5.0);    // 130 - 125
    EXPECT_DOUBLE_EQ(st.computeNs, 40.0);
    EXPECT_DOUBLE_EQ(st.stallNs, 10.0);   // (180-130) - 40
    EXPECT_DOUBLE_EQ(st.networkNs, 115.0); // 170 - 55
    // The cancelled sibling is concurrent, not sequential: nothing
    // billed as shed or backoff.
    EXPECT_DOUBLE_EQ(st.shedNs, 0.0);
    EXPECT_DOUBLE_EQ(st.backoffNs, 0.0);

    const ServiceAttribution &w = acc.services.at("webui");
    EXPECT_DOUBLE_EQ(w.queueNs, 5.0);
    EXPECT_DOUBLE_EQ(w.computeNs, 50.0);
    // window 590, group wall [20, 190] covers 170 => uncovered 420.
    EXPECT_DOUBLE_EQ(w.stallNs, 370.0);
    EXPECT_DOUBLE_EQ(w.networkNs, 15.0); // root wall 610 - server 595

    EXPECT_DOUBLE_EQ(acc.unattributedNs, 0.0);
    EXPECT_DOUBLE_EQ(acc.attributedNs(), acc.e2eNs);
}

/** Hedged call won by the FIRST leg: the cancelled hedge leg is
 * unbilled and the wall matches the plain single-attempt accounting
 * (the first leg's issue IS the call's issue). */
TEST(CriticalPath, HedgeLoserCancelledFirstLegWins)
{
    Trace t(1);
    const SpanId root = t.addSpan();
    {
        Span &s = t.span(root);
        s.service = "webui";
        s.clientIssue = 0;
        s.arrived = 5;
        s.dispatched = 10;
        s.finish = 500;
        s.clientComplete = 510;
        s.computeNs = 60.0;
    }
    const SpanId first = t.addSpan();
    {
        Span &s = t.span(first);
        s.parent = root;
        s.group = 1;
        s.service = "storage";
        s.clientIssue = 20;
        s.arrived = 25;
        s.dispatched = 30;
        s.finish = 160;
        s.clientComplete = 170;
        s.computeNs = 100.0;
    }
    const SpanId hedgeLeg = t.addSpan();
    {
        Span &s = t.span(hedgeLeg);
        s.parent = root;
        s.group = 1;
        s.attempt = 2;
        s.retryOf = first;
        s.hedge = true;
        s.service = "storage";
        s.clientIssue = 120;
        s.clientComplete = 170; // cancelled when the first leg won
        s.cancelled = true;
    }

    Attribution acc;
    ASSERT_TRUE(attributeTrace(t, acc));
    EXPECT_DOUBLE_EQ(acc.e2eNs, 510.0);

    const ServiceAttribution &st = acc.services.at("storage");
    EXPECT_DOUBLE_EQ(st.queueNs, 5.0);     // 30 - 25
    EXPECT_DOUBLE_EQ(st.computeNs, 100.0);
    EXPECT_DOUBLE_EQ(st.stallNs, 30.0);    // (160-30) - 100
    EXPECT_DOUBLE_EQ(st.networkNs, 15.0);  // wall 150 - server 135
    EXPECT_DOUBLE_EQ(st.shedNs, 0.0);
    EXPECT_DOUBLE_EQ(st.backoffNs, 0.0);

    EXPECT_DOUBLE_EQ(acc.unattributedNs, 0.0);
    EXPECT_DOUBLE_EQ(acc.attributedNs(), acc.e2eNs);
}

/** A request rejected before dispatch books its residency as shed. */
TEST(CriticalPath, AdmissionRejectIsShed)
{
    Trace t(1);
    const SpanId id = t.addSpan();
    Span &s = t.span(id);
    s.service = "webui";
    s.clientIssue = 0;
    s.arrived = 10;
    s.dispatched = 0; // never reached a worker
    s.finish = 15;
    s.clientComplete = 25;
    s.status = svc::Status::Rejected;
    s.clientStatus = svc::Status::Ok; // degenerate: count the window

    Attribution acc;
    ASSERT_TRUE(attributeTrace(t, acc));
    const ServiceAttribution &w = acc.services.at("webui");
    EXPECT_DOUBLE_EQ(w.shedNs, 5.0); // finish - arrived
    EXPECT_DOUBLE_EQ(w.queueNs, 0.0);
    EXPECT_DOUBLE_EQ(w.computeNs, 0.0);
}

/** Incomplete traces (root still in flight) are skipped, untouched. */
TEST(CriticalPath, InFlightRootSkipped)
{
    Trace t(1);
    const SpanId id = t.addSpan();
    t.span(id).service = "webui";
    t.span(id).clientIssue = 100; // no completion, no finish

    Attribution acc;
    EXPECT_FALSE(attributeTrace(t, acc));
    EXPECT_EQ(acc.traces, 0u);
    EXPECT_TRUE(acc.services.empty());
}

TEST(TraceExperiment, OffLeavesNoStoreAndNoJsonBlock)
{
    const core::RunResult r = core::runExperiment(fastConfig());
    EXPECT_FALSE(r.trace.active);
    EXPECT_EQ(r.trace.store, nullptr);
    EXPECT_EQ(core::toJson(r).find("\"trace\""), std::string::npos);
}

TEST(TraceExperiment, TracingDoesNotPerturbTheRun)
{
    core::ExperimentConfig untraced = fastConfig();
    core::ExperimentConfig traced = fastConfig();
    traced.trace.enabled = true;
    const core::RunResult a = core::runExperiment(untraced);
    const core::RunResult b = core::runExperiment(traced);
    // Recording never schedules events or draws shared RNG: every
    // dynamic metric must be bit-identical, not merely close.
    EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
    EXPECT_EQ(a.throughputRps, b.throughputRps);
    EXPECT_EQ(a.latency.p50Ms, b.latency.p50Ms);
    EXPECT_EQ(a.latency.p99Ms, b.latency.p99Ms);
    EXPECT_EQ(a.cpuUtilization, b.cpuUtilization);
    EXPECT_EQ(a.sched.contextSwitches, b.sched.contextSwitches);
}

TEST(TraceExperiment, AttributionSumsToMeanE2e)
{
    core::ExperimentConfig c = fastConfig();
    c.trace.enabled = true;
    const core::RunResult r = core::runExperiment(c);
    ASSERT_TRUE(r.trace.active);
    ASSERT_NE(r.trace.store, nullptr);
    EXPECT_GT(r.trace.tracesSampled, 0u);
    EXPECT_GT(r.trace.tracesAnalyzed, 0u);
    EXPECT_GT(r.trace.spanCount, r.trace.tracesSampled);
    EXPECT_GT(r.trace.meanE2eMs, 0.0);
    const double sum = r.trace.attribution.attributedNs();
    const double e2e = r.trace.attribution.e2eNs;
    ASSERT_GT(e2e, 0.0);
    EXPECT_NEAR(sum / e2e, 1.0, 0.01);
}

TEST(TraceExperiment, TracedRunsAreDeterministic)
{
    core::ExperimentConfig c = fastConfig();
    c.trace.enabled = true;
    const core::RunResult a = core::runExperiment(c);
    const core::RunResult b = core::runExperiment(c);
    EXPECT_EQ(core::toJson(a), core::toJson(b));
    ASSERT_NE(a.trace.store, nullptr);
    std::ostringstream ca, cb;
    writeChromeTrace(ca, *a.trace.store);
    writeChromeTrace(cb, *b.trace.store);
    EXPECT_EQ(ca.str(), cb.str());
}

TEST(TraceExperiment, FractionalSamplingThinsTraces)
{
    core::ExperimentConfig c = fastConfig();
    c.trace.enabled = true;
    c.trace.sampleRate = 0.3;
    const core::RunResult r = core::runExperiment(c);
    ASSERT_TRUE(r.trace.active);
    EXPECT_GT(r.trace.tracesSampled, 0u);
    EXPECT_LT(r.trace.tracesSampled, r.trace.rootsSeen);

    c.trace.sampleRate = 0.0;
    const core::RunResult none = core::runExperiment(c);
    EXPECT_TRUE(none.trace.active);
    EXPECT_EQ(none.trace.tracesSampled, 0u);
    EXPECT_GT(none.trace.rootsSeen, 0u);
}

TEST(TraceExperiment, ChromeExportParsesWithEvents)
{
    core::ExperimentConfig c = fastConfig();
    c.trace.enabled = true;
    const core::RunResult r = core::runExperiment(c);
    ASSERT_NE(r.trace.store, nullptr);
    std::ostringstream os;
    writeChromeTrace(os, *r.trace.store);
    const core::JsonValue v = core::parseJson(os.str());
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("displayTimeUnit").stringValue, "ms");
    const core::JsonValue &events = v.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    EXPECT_FALSE(events.elements.empty());
    // Spot-check: every event carries the required keys.
    for (const core::JsonValue &e : events.elements) {
        EXPECT_NE(e.find("ph"), nullptr);
        EXPECT_NE(e.find("pid"), nullptr);
        EXPECT_NE(e.find("tid"), nullptr);
        EXPECT_NE(e.find("name"), nullptr);
    }
}

TEST(TraceExperiment, JsonTraceBlockValidates)
{
    core::ExperimentConfig c = fastConfig();
    c.trace.enabled = true;
    const core::RunResult r = core::runExperiment(c);
    const core::JsonValue v = core::parseJson(core::toJson(r));
    const core::JsonValue *tr = v.find("trace");
    ASSERT_NE(tr, nullptr);
    EXPECT_DOUBLE_EQ(tr->at("sample_rate").numberValue, 1.0);
    EXPECT_GT(tr->at("traces_analyzed").numberValue, 0.0);
    EXPECT_GT(tr->at("mean_e2e_ms").numberValue, 0.0);
    const core::JsonValue &att = tr->at("attribution");
    ASSERT_TRUE(att.isObject());
    EXPECT_NE(att.find("webui"), nullptr);
    // The emitted per-service means plus the residue reproduce the
    // emitted mean end-to-end latency (json_check --trace invariant).
    double sum = tr->at("unattributed_ms").numberValue;
    for (const auto &[name, a] : att.members) {
        sum += a.at("queue_ms").numberValue +
               a.at("compute_ms").numberValue +
               a.at("stall_ms").numberValue +
               a.at("fanout_wait_ms").numberValue +
               a.at("retry_backoff_ms").numberValue +
               a.at("shed_ms").numberValue + a.at("network_ms").numberValue;
    }
    EXPECT_NEAR(sum, tr->at("mean_e2e_ms").numberValue,
                0.001 * tr->at("mean_e2e_ms").numberValue + 1e-9);
}

} // namespace
} // namespace microscale::trace
